"""Static synchronization lint: the SY0xx half of synccheck.

Every analyzer so far certifies what runs *inside* parallel regions;
this one checks the synchronization substrate itself.  The pass parses
``repro.core``, ``repro.compiler`` and ``repro.resilience``, extracts
every ``threading`` primitive (module-level and ``self.attr``
assignments, including primitives nested in dict literals such as
``ThreadTeam._ordered_turn["cond"]``), then simulates each function
with a held-lock set to emit the SY lint family:

* **SY001** — lock-order cycle in the inter-procedural acquisition
  graph (two functions acquiring the same locks in opposite orders can
  deadlock).
* **SY002** — a lock held across a barrier wait or other blocking call
  (``.join``, ``parallel*``, a *different* condition's ``wait``): the
  blocked-on thread may need that lock to make progress.
* **SY003** — ``Condition.wait()`` outside a predicate ``while`` loop:
  spurious wakeups and notify races make a bare or ``if``-guarded wait
  incorrect.
* **SY004** — module-level mutable state written with no lock held, in
  a module that uses ``threading`` (the write-classification analogue
  of footprint.py, applied to globals).  A write inside a function
  whose every in-corpus call site holds a lock is considered guarded
  (the ``_locked``-suffix helper convention).
* **SY005** — barrier divergence: two non-exempt code paths through
  one function perform different (nonzero) numbers of barrier waits,
  so peer threads can end up waiting at different barriers forever.
  Branches conditioned on shutdown/abort state and raising paths are
  exempt (aborting *is* the sanctioned way to leave the protocol).
* **SY006** — re-acquisition of a held non-reentrant ``Lock`` (self
  deadlock).

The lint is deliberately conservative in its *resolution* (an
unresolvable receiver is ignored rather than guessed) and deliberately
eager in its *rules* — the corpus must be clean, and the certification
test proves each rule fires on seeded-defect fixtures.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.report import ERROR, Finding

#: threading constructors we track, mapped to a primitive kind.
_PRIMITIVE_CTORS = {
    "Lock": "lock",
    "RLock": "rlock",
    "Condition": "condition",
    "Barrier": "barrier",
    "Semaphore": "lock",
    "BoundedSemaphore": "lock",
    "Event": "event",
    "local": "local",
}

#: Lockable kinds (participate in the held set / acquisition graph).
_LOCK_KINDS = {"lock", "rlock", "condition"}

#: Method calls that mutate a list/dict/set receiver in place.
_MUTATOR_METHODS = {
    "append", "extend", "insert", "remove", "pop", "clear", "update",
    "setdefault", "add", "discard", "popitem", "sort", "reverse",
}

#: Identifier substrings that mark a branch as an abort/shutdown path
#: (exempt from barrier-divergence counting: leaving the protocol on
#: abort is sanctioned, the abort call unblocks the peers).
_EXEMPT_BRANCH_MARKERS = ("shutdown", "abort", "stop", "closed", "broken")

#: Call names that block on other threads (beyond barrier waits).
_BLOCKING_CALL_NAMES = {
    "join", "join_worker", "parallel", "parallel_for", "parallel_for_nest",
}


# ---------------------------------------------------------------------------
# primitive extraction
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Primitive:
    """One threading primitive found in the corpus."""

    ident: str      # "module.NAME", "module.Class.attr", ".. [key]"
    kind: str       # lock / rlock / condition / barrier / event / local
    path: str
    lineno: int

    @property
    def terminal(self) -> str:
        """The attribute/name a use site would spell (last component)."""
        tail = self.ident.rsplit(".", 1)[-1]
        return tail.split("[", 1)[0]


def _ctor_kind(node: ast.AST) -> Optional[str]:
    """Kind if ``node`` is a ``threading.X()`` style constructor call."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    name = None
    if isinstance(func, ast.Attribute):
        name = func.attr
    elif isinstance(func, ast.Name):
        name = func.id
    return _PRIMITIVE_CTORS.get(name or "")


@dataclass
class CorpusIndex:
    """Every primitive plus lookup tables for use-site resolution."""

    primitives: Dict[str, Primitive] = field(default_factory=dict)
    #: terminal attribute/name -> idents spelling it.
    by_terminal: Dict[str, List[str]] = field(default_factory=dict)
    #: container idents (dicts holding primitives) -> {key: ident}.
    containers: Dict[str, Dict[str, str]] = field(default_factory=dict)

    def add(self, prim: Primitive) -> None:
        self.primitives[prim.ident] = prim
        self.by_terminal.setdefault(prim.terminal, []).append(prim.ident)

    def kind(self, ident: Optional[str]) -> Optional[str]:
        if ident is None:
            return None
        prim = self.primitives.get(ident)
        return prim.kind if prim else None

    def resolve_terminal(self, name: str,
                         prefer_module: str = "") -> Optional[str]:
        """Unique primitive spelled ``name``, preferring the module."""
        candidates = self.by_terminal.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        same = [c for c in candidates
                if prefer_module and c.startswith(prefer_module + ".")]
        if len(same) == 1:
            return same[0]
        return None


def _extract_primitives(tree: ast.Module, modname: str, path: str,
                        index: CorpusIndex) -> None:
    def register(ident: str, kind: str, lineno: int) -> None:
        index.add(Primitive(ident, kind, path, lineno))

    def handle_value(ident: str, value: ast.AST, lineno: int) -> None:
        kind = _ctor_kind(value)
        if kind is not None:
            register(ident, kind, lineno)
            return
        if isinstance(value, ast.Dict):
            keys: Dict[str, str] = {}
            for key, val in zip(value.keys, value.values):
                vkind = _ctor_kind(val)
                if (vkind is not None and isinstance(key, ast.Constant)
                        and isinstance(key.value, str)):
                    member = f"{ident}[{key.value}]"
                    register(member, vkind, val.lineno)
                    keys[key.value] = member
            if keys:
                index.containers[ident] = keys

    # module-level assignments
    for stmt in tree.body:
        targets: List[ast.AST] = []
        value: Optional[ast.AST] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                handle_value(f"{modname}.{target.id}", value, stmt.lineno)

    # self.attr assignments anywhere inside each class
    for cls in [n for n in tree.body if isinstance(n, ast.ClassDef)]:
        for node in ast.walk(cls):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    handle_value(f"{modname}.{cls.name}.{target.attr}",
                                 node.value, node.lineno)


def _mutable_globals(tree: ast.Module, modname: str) -> Dict[str, int]:
    """Module-level names bound to a mutable container literal/ctor."""
    out: Dict[str, int] = {}
    for stmt in tree.body:
        targets: List[ast.AST] = []
        value: Optional[ast.AST] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        mutable = isinstance(value, (ast.List, ast.Dict, ast.Set)) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ("list", "dict", "set")
        )
        if not mutable:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                out[target.id] = stmt.lineno
    return out


def _imports_threading(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(a.name.split(".")[0] == "threading" for a in node.names):
                return True
        elif isinstance(node, ast.ImportFrom):
            if (node.module or "").split(".")[0] == "threading":
                return True
    return False


# ---------------------------------------------------------------------------
# per-function simulation
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SyncEvent:
    """One synchronization-relevant operation in a function body."""

    kind: str                 # acquire / barrier / cond_wait / blocking
                              # / global_write / call
    resource: str             # primitive ident, global name, callee ref...
    held: Tuple[str, ...]     # sorted held-lock idents at the event
    lineno: int
    in_while: bool = False    # cond_wait: lexically inside a while loop


@dataclass
class FunctionSummary:
    """Everything the inter-procedural passes need about one function."""

    ref: str                  # "module.func" or "module.Class.method"
    path: str
    events: List[SyncEvent] = field(default_factory=list)
    #: possible barrier-wait counts over non-exempt paths (None when the
    #: function was too branchy to enumerate).
    barrier_counts: Optional[Set[int]] = None
    barrier_lines: List[int] = field(default_factory=list)

    @property
    def direct_acquires(self) -> Set[str]:
        return {e.resource for e in self.events if e.kind == "acquire"}


class _FunctionScanner:
    """Walks one function body tracking the held-lock set."""

    def __init__(self, modname: str, index: CorpusIndex,
                 mutable_globals: Dict[str, int], ref: str,
                 path: str) -> None:
        self.modname = modname
        self.index = index
        self.globals = mutable_globals
        self.summary = FunctionSummary(ref=ref, path=path)
        #: local name -> resolved primitive/container ident
        self.aliases: Dict[str, str] = {}

    # -- resolution ----------------------------------------------------
    def _resolve(self, node: ast.AST) -> Optional[str]:
        """Resolve an expression to a primitive/container ident."""
        if isinstance(node, ast.Name):
            if node.id in self.aliases:
                return self.aliases[node.id]
            ident = f"{self.modname}.{node.id}"
            if ident in self.index.primitives or \
                    ident in self.index.containers:
                return ident
            return None
        if isinstance(node, ast.Attribute):
            # self._x / team._x / anything._x: resolve by terminal attr.
            return self.index.resolve_terminal(node.attr, self.modname)
        if isinstance(node, ast.Subscript):
            base = self._resolve(node.value)
            if base is None:
                return None
            keys = self.index.containers.get(base)
            sl = node.slice
            if (keys and isinstance(sl, ast.Constant)
                    and isinstance(sl.value, str)):
                return keys.get(sl.value)
            return None
        return None

    def _emit(self, kind: str, resource: str, held: Set[str],
              lineno: int, in_while: bool = False) -> None:
        self.summary.events.append(SyncEvent(
            kind, resource, tuple(sorted(held)), lineno, in_while,
        ))

    # -- expression-level classification -------------------------------
    def _classify_call(self, call: ast.Call, held: Set[str],
                       in_while: bool) -> None:
        func = call.func
        if isinstance(func, ast.Attribute):
            attr = func.attr
            receiver = func.value
            if attr == "wait":
                ident = self._resolve(receiver)
                kind = self.index.kind(ident)
                rname = receiver.attr if isinstance(receiver, ast.Attribute) \
                    else receiver.id if isinstance(receiver, ast.Name) else ""
                if kind == "barrier" or (
                        kind is None and "barrier" in rname.lower()):
                    self.summary.barrier_lines.append(call.lineno)
                    self._emit("barrier", ident or rname or "<barrier>",
                               held, call.lineno)
                elif kind == "condition" or (
                        kind is None and "cond" in rname.lower()):
                    self._emit("cond_wait", ident or rname or "<condition>",
                               held, call.lineno, in_while=in_while)
                elif kind == "event":
                    self._emit("blocking", ident or rname, held, call.lineno)
                return
            if attr == "wait_for":
                ident = self._resolve(receiver)
                if self.index.kind(ident) == "condition":
                    # wait_for embeds the predicate loop: SY003-safe,
                    # but still a blocking point for SY002.
                    self._emit("cond_wait", ident or "<condition>", held,
                               call.lineno, in_while=True)
                return
            if attr == "barrier_wait" or attr == "barrier":
                self.summary.barrier_lines.append(call.lineno)
                self._emit("barrier", f"<{attr}>", held, call.lineno)
                return
            if attr == "acquire":
                ident = self._resolve(receiver)
                if self.index.kind(ident) in _LOCK_KINDS:
                    self._emit("acquire", ident, held, call.lineno)
                    held.add(ident)
                return
            if attr == "release":
                ident = self._resolve(receiver)
                if ident is not None:
                    held.discard(ident)
                return
            if attr in _BLOCKING_CALL_NAMES:
                self._emit("blocking", attr, held, call.lineno)
                self._callee(func, held)
                return
            if attr in _MUTATOR_METHODS and isinstance(receiver, ast.Name):
                if receiver.id in self.globals:
                    self._emit("global_write", receiver.id, held,
                               call.lineno)
                return
            self._callee(func, held)
            return
        if isinstance(func, ast.Name):
            if func.id in _BLOCKING_CALL_NAMES:
                self._emit("blocking", func.id, held, call.lineno)
            self._callee(func, held)

    def _callee(self, func: ast.AST, held: Set[str]) -> None:
        """Record a potentially-resolvable call for the fixpoint pass."""
        if isinstance(func, ast.Name):
            self._emit("call", f"{self.modname}.{func.id}", held,
                       func.lineno)
        elif isinstance(func, ast.Attribute):
            # self.method() / obj.method(): resolved by terminal name in
            # the fixpoint pass (unique-method heuristic).
            self._emit("call", f"?.{func.attr}", held, func.lineno)

    def _scan_expr(self, node: ast.AST, held: Set[str],
                   in_while: bool) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._classify_call(sub, held, in_while)

    # -- statement-level walk ------------------------------------------
    def scan(self, body: List[ast.stmt]) -> FunctionSummary:
        self._scan_block(body, set(), in_while=False)
        return self.summary

    def _scan_block(self, stmts: List[ast.stmt], held: Set[str],
                    in_while: bool) -> None:
        for stmt in stmts:
            self._scan_stmt(stmt, held, in_while)

    def _scan_stmt(self, stmt: ast.stmt, held: Set[str],
                   in_while: bool) -> None:
        if isinstance(stmt, ast.With):
            inner = set(held)
            for item in stmt.items:
                ident = self._resolve(item.context_expr)
                kind = self.index.kind(ident)
                if kind in _LOCK_KINDS:
                    self._emit("acquire", ident, inner, stmt.lineno)
                    inner.add(ident)
                else:
                    self._scan_expr(item.context_expr, inner, in_while)
            self._scan_block(stmt.body, inner, in_while)
            return
        if isinstance(stmt, ast.Assign):
            # alias tracking: x = <resolvable primitive/container>
            ident = self._resolve(stmt.value)
            if ident is not None:
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.aliases[target.id] = ident
            self._scan_expr(stmt.value, held, in_while)
            for target in stmt.targets:
                self._check_global_write_target(target, held)
            return
        if isinstance(stmt, ast.AugAssign):
            self._scan_expr(stmt.value, held, in_while)
            self._check_global_write_target(stmt.target, held)
            return
        if isinstance(stmt, (ast.If,)):
            self._scan_expr(stmt.test, held, in_while)
            self._scan_block(stmt.body, set(held), in_while)
            self._scan_block(stmt.orelse, set(held), in_while)
            return
        if isinstance(stmt, ast.While):
            self._scan_expr(stmt.test, held, in_while)
            self._scan_block(stmt.body, set(held), in_while=True)
            return
        if isinstance(stmt, ast.For):
            self._scan_expr(stmt.iter, held, in_while)
            self._scan_block(stmt.body, set(held), in_while)
            self._scan_block(stmt.orelse, set(held), in_while)
            return
        if isinstance(stmt, ast.Try):
            self._scan_block(stmt.body, set(held), in_while)
            for handler in stmt.handlers:
                self._scan_block(handler.body, set(held), in_while)
            self._scan_block(stmt.orelse, set(held), in_while)
            self._scan_block(stmt.finalbody, set(held), in_while)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested defs analyzed separately
        for node in ast.iter_child_nodes(stmt):
            self._scan_expr(node, held, in_while)

    def _check_global_write_target(self, target: ast.AST,
                                   held: Set[str]) -> None:
        # G[k] = v, G[:] = v rebinds into a module-level mutable
        if isinstance(target, ast.Subscript) and \
                isinstance(target.value, ast.Name):
            name = target.value.id
            if name in self.globals and name not in self.aliases:
                self._emit("global_write", name, held, target.lineno)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._check_global_write_target(elt, held)


# ---------------------------------------------------------------------------
# barrier-divergence path counting (SY005)
# ---------------------------------------------------------------------------
_PATH_CAP = 256


def _branch_exempt(test: ast.AST) -> bool:
    for node in ast.walk(test):
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name and any(m in name.lower() for m in _EXEMPT_BRANCH_MARKERS):
            return True
    return False


def _is_barrier_wait(stmt: ast.stmt, scanner_lines: Set[int]) -> int:
    """Number of barrier waits syntactically inside ``stmt`` itself."""
    count = 0
    for node in ast.walk(stmt):
        if getattr(node, "lineno", None) in scanner_lines and \
                isinstance(node, ast.Call):
            count += 1
    return count


def _barrier_counts(body: List[ast.stmt],
                    barrier_lines: Set[int]) -> Optional[Set[int]]:
    """Set of barrier-wait counts over non-exempt, non-raising paths.

    Returns None when the function is too branchy to enumerate.  Paths
    are (count, exempt, terminated) triples folded left-to-right.
    """
    # path := (count, exempt); terminated paths are moved to `done`.
    done: List[Tuple[int, bool]] = []

    def step(paths: List[Tuple[int, bool]],
             stmts: List[ast.stmt]) -> Optional[List[Tuple[int, bool]]]:
        for stmt in stmts:
            if len(paths) + len(done) > _PATH_CAP:
                return None
            if isinstance(stmt, ast.If):
                # Mark exemption *before* descending: a Return/Raise
                # inside the branch moves its path to `done` immediately.
                entry = ([(c, True) for c, _ in paths]
                         if _branch_exempt(stmt.test) else list(paths))
                body_paths = step(entry, stmt.body)
                else_paths = step(list(paths), stmt.orelse)
                if body_paths is None or else_paths is None:
                    return None
                paths = body_paths + else_paths
                continue
            if isinstance(stmt, (ast.While, ast.For)):
                # one symbolic iteration: divergence across iterations is
                # symmetric, divergence *inside* one iteration is not.
                test = stmt.test if isinstance(stmt, ast.While) else None
                entry = ([(c, True) for c, _ in paths]
                         if test is not None and _branch_exempt(test)
                         else list(paths))
                body_paths = step(entry, stmt.body)
                if body_paths is None:
                    return None
                paths = paths + body_paths
                continue
            if isinstance(stmt, ast.Try):
                body_paths = step(list(paths), stmt.body)
                if body_paths is None:
                    return None
                body_paths = step(body_paths, stmt.orelse)
                if body_paths is None:
                    return None
                # handler paths are error paths: exempt.
                for handler in stmt.handlers:
                    hp = step([(c, True) for c, e in paths], handler.body)
                    if hp is None:
                        return None
                    body_paths = body_paths + hp
                paths = step(body_paths, stmt.finalbody)
                if paths is None:
                    return None
                continue
            if isinstance(stmt, ast.Return):
                waits = _is_barrier_wait(stmt, barrier_lines)
                done.extend((c + waits, e) for c, e in paths)
                return []
            if isinstance(stmt, ast.Raise):
                done.extend((c, True) for c, e in paths)
                return []
            if isinstance(stmt, (ast.Break, ast.Continue)):
                done.extend(paths)
                return []
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            waits = _is_barrier_wait(stmt, barrier_lines)
            if waits:
                paths = [(c + waits, e) for c, e in paths]
        return paths

    final = step([(0, False)], body)
    if final is None:
        return None
    done.extend(final)
    return {c for c, exempt in done if not exempt}


# ---------------------------------------------------------------------------
# corpus analysis
# ---------------------------------------------------------------------------
def default_lint_roots() -> List[Path]:
    """The packages whose synchronization synccheck vouches for."""
    import repro.compiler
    import repro.core
    import repro.resilience

    return [Path(pkg.__file__).parent
            for pkg in (repro.core, repro.compiler, repro.resilience)]


def _iter_functions(tree: ast.Module, modname: str):
    """Yield (ref, funcdef) for every function/method in a module."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield f"{modname}.{node.name}", node
        elif isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield f"{modname}.{node.name}.{sub.name}", sub


def _parse_corpus(roots: Iterable[Path]):
    """Parse every module under roots; returns per-module records."""
    modules = []
    for root in roots:
        root = Path(root)
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for path in files:
            try:
                tree = ast.parse(path.read_text())
            except (OSError, SyntaxError):
                continue
            modules.append((path.stem, str(path), tree))
    return modules


def lint_sync(roots: Optional[Iterable[Path]] = None) -> List[Finding]:
    """Run the full SY0xx static pass over every module under roots."""
    modules = _parse_corpus(roots if roots is not None
                            else default_lint_roots())

    index = CorpusIndex()
    for modname, path, tree in modules:
        _extract_primitives(tree, modname, path, index)

    summaries: Dict[str, FunctionSummary] = {}
    by_method: Dict[str, List[str]] = {}
    threaded_modules: Set[str] = set()
    module_globals: Dict[str, Dict[str, int]] = {}
    for modname, path, tree in modules:
        if _imports_threading(tree):
            threaded_modules.add(modname)
        mutables = _mutable_globals(tree, modname) \
            if _imports_threading(tree) else {}
        module_globals[modname] = mutables
        for ref, funcdef in _iter_functions(tree, modname):
            scanner = _FunctionScanner(modname, index, mutables, ref, path)
            summary = scanner.scan(funcdef.body)
            summary.barrier_counts = _barrier_counts(
                funcdef.body, set(summary.barrier_lines)
            )
            summaries[ref] = summary
            by_method.setdefault(ref.rsplit(".", 1)[-1], []).append(ref)

    findings: List[Finding] = []

    def emit(rule: str, where: str, message: str, path: str,
             lineno: int) -> None:
        findings.append(Finding(
            rule=rule, severity=ERROR, layer=where, message=message,
            location=f"{path}:{lineno}",
        ))

    # -- resolve call refs to summaries --------------------------------
    def resolve_callee(ref: str) -> Optional[FunctionSummary]:
        if ref in summaries:
            return summaries[ref]
        if ref.startswith("?."):
            method = ref[2:]
            candidates = by_method.get(method, [])
            if len(candidates) == 1:
                return summaries[candidates[0]]
        return None

    # -- transitive acquires (fixpoint) ---------------------------------
    trans: Dict[str, Set[str]] = {
        ref: set(s.direct_acquires) for ref, s in summaries.items()
    }
    changed = True
    while changed:
        changed = False
        for ref, summary in summaries.items():
            for event in summary.events:
                if event.kind != "call":
                    continue
                callee = resolve_callee(event.resource)
                if callee is None:
                    continue
                before = len(trans[ref])
                trans[ref] |= trans[callee.ref]
                if len(trans[ref]) != before:
                    changed = True

    # -- lock-acquisition graph (SY001 / SY006) -------------------------
    edges: Dict[str, Set[str]] = {}
    edge_sites: Dict[Tuple[str, str], Tuple[str, str, int]] = {}

    def add_edge(a: str, b: str, where: str, path: str,
                 lineno: int) -> None:
        edges.setdefault(a, set()).add(b)
        edge_sites.setdefault((a, b), (where, path, lineno))

    for ref, summary in summaries.items():
        for event in summary.events:
            if event.kind == "acquire":
                if (event.resource in event.held
                        and index.kind(event.resource) == "lock"):
                    emit("SY006", ref,
                         f"non-reentrant lock {event.resource} re-acquired "
                         "while already held (self deadlock)",
                         summary.path, event.lineno)
                for held in event.held:
                    if held != event.resource:
                        add_edge(held, event.resource, ref,
                                 summary.path, event.lineno)
            elif event.kind == "call" and event.held:
                callee = resolve_callee(event.resource)
                if callee is None:
                    continue
                for acquired in trans[callee.ref]:
                    for held in event.held:
                        if held != acquired:
                            add_edge(held, acquired, ref,
                                     summary.path, event.lineno)

    # cycle detection over the lock graph
    reported_cycles: Set[frozenset] = set()

    def find_cycles() -> None:
        color: Dict[str, int] = {}
        stack: List[str] = []

        def dfs(node: str) -> None:
            color[node] = 1
            stack.append(node)
            for succ in sorted(edges.get(node, ())):
                if color.get(succ, 0) == 0:
                    dfs(succ)
                elif color.get(succ) == 1:
                    cycle = stack[stack.index(succ):] + [succ]
                    key = frozenset(cycle)
                    if key not in reported_cycles:
                        reported_cycles.add(key)
                        where, path, lineno = edge_sites[
                            (stack[-1], succ)
                        ]
                        emit("SY001", where,
                             "lock-order cycle: "
                             + " -> ".join(cycle)
                             + " (two threads taking these locks in "
                             "opposite orders can deadlock)",
                             path, lineno)
            stack.pop()
            color[node] = 2

        for node in sorted(edges):
            if color.get(node, 0) == 0:
                dfs(node)

    find_cycles()

    # -- SY002 / SY003 ---------------------------------------------------
    for ref, summary in summaries.items():
        for event in summary.events:
            if event.kind == "barrier" and event.held:
                emit("SY002", ref,
                     f"barrier wait on {event.resource} while holding "
                     f"{', '.join(event.held)}: a peer needing the lock "
                     "can never reach the barrier",
                     summary.path, event.lineno)
            elif event.kind == "blocking" and event.held:
                emit("SY002", ref,
                     f"blocking call {event.resource}() while holding "
                     f"{', '.join(event.held)}",
                     summary.path, event.lineno)
            elif event.kind == "cond_wait":
                other = [h for h in event.held if h != event.resource]
                if other:
                    emit("SY002", ref,
                         f"Condition.wait on {event.resource} while "
                         f"holding {', '.join(other)}: wait releases only "
                         "the condition's own lock",
                         summary.path, event.lineno)
                if not event.in_while:
                    emit("SY003", ref,
                         f"Condition.wait on {event.resource} outside a "
                         "predicate while-loop: spurious wakeups and "
                         "missed notifies make a bare wait incorrect",
                         summary.path, event.lineno)

    # -- SY004: unguarded module-global writes ---------------------------
    # A function whose every in-corpus call site holds a lock is treated
    # as guarded (the *_locked helper convention, verified via the call
    # events rather than trusted from the name).
    callers: Dict[str, List[Tuple[str, ...]]] = {}
    for ref, summary in summaries.items():
        for event in summary.events:
            if event.kind != "call":
                continue
            callee = resolve_callee(event.resource)
            if callee is not None:
                callers.setdefault(callee.ref, []).append(event.held)

    for ref, summary in summaries.items():
        unguarded = [e for e in summary.events
                     if e.kind == "global_write" and not e.held]
        if not unguarded:
            continue
        call_helds = callers.get(ref)
        if call_helds and all(held for held in call_helds):
            continue  # only ever invoked under a lock
        for event in unguarded:
            emit("SY004", ref,
                 f"module-level mutable {event.resource!r} written with "
                 "no lock held in a threading-aware module",
                 summary.path, event.lineno)

    # -- SY005: barrier divergence --------------------------------------
    for ref, summary in summaries.items():
        counts = summary.barrier_counts
        if counts is None or not summary.barrier_lines:
            continue
        nonzero = {c for c in counts if c > 0}
        if len(nonzero) > 1:
            emit("SY005", ref,
                 "barrier divergence: non-exempt paths through this "
                 f"function wait at {sorted(nonzero)} barriers "
                 "depending on the branch taken; peers blocked at the "
                 "extra barrier(s) never get released",
                 summary.path,
                 summary.barrier_lines[0])

    return findings
