"""Graph-compiler certifier: fusion + arena checked by the existing gates.

``fusecheck`` takes every net through the full compiler pipeline and
holds the result to the analyzers' standards:

1. **Transform** — :func:`repro.compiler.fuse.fuse_spec` (FU001 when the
   pass itself fails, FU005 info when there is nothing to fuse).
2. **Shape parity** — the fused spec must lint clean under netcheck and
   every blob surviving fusion must keep its unfused shape (FU002).
3. **Footprint lint** — the fused layer classes run through the static
   FP analyzer; their chunk methods must classify exactly as declared
   (absorbed FP findings).
4. **Arena audit** — :func:`repro.compiler.arena.plan_arena` on the
   built net; no two simultaneously-live blobs may share storage
   (FU003), and the liveness-peak memory is reported.
5. **Cost parity** — ``spec_costs`` and ``net_costs`` must agree on the
   fused net's work descriptors (FU004), so the planner prices fused
   layers identically from a spec or a live net.
6. **Plan lint** — the fused spec goes through plancheck's planner;
   its PL findings are absorbed.
7. **Replay certification** (zoo nets) — the fused net, with the arena
   applied and the planner's plan driving a thread team, must train
   bitwise identically to the *unfused sequential* baseline (FU201 on
   divergence, FU202 info on success).

The ``--gate`` contract matches the other passes: any ERROR fails.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.analysis.report import ERROR, INFO, Finding
from repro.framework.net_spec import NetSpec


@dataclass
class NetFuseReport:
    """Fusion + arena certification for one net at one team size."""

    net: str
    phase: str = "TRAIN"
    batch: Optional[int] = None
    threads: int = 1
    findings: List[Finding] = field(default_factory=list)
    fusion: Optional[dict] = None        # FusionReport.to_json()
    arena: Optional[dict] = None         # ArenaReport.to_json()
    predicted_us: float = 0.0
    uniform_us: float = 0.0

    @property
    def ok(self) -> bool:
        return not any(f.severity == ERROR for f in self.findings)

    @property
    def gate_ok(self) -> bool:
        return self.ok

    def to_json(self) -> dict:
        return {
            "net": self.net,
            "phase": self.phase,
            "batch": self.batch,
            "threads": self.threads,
            "ok": self.ok,
            "fusion": self.fusion,
            "arena": self.arena,
            "predicted_us": self.predicted_us,
            "uniform_us": self.uniform_us,
            "findings": [f.to_json() for f in self.findings],
        }

    def summary_lines(self) -> List[str]:
        status = "OK" if self.ok else "VIOLATIONS"
        fused = len(self.fusion["fused"]) if self.fusion else 0
        rewrites = len(self.fusion["rewrites"]) if self.fusion else 0
        line = (
            f"fusecheck: net={self.net} phase={self.phase} "
            f"threads={self.threads} -> {status} "
            f"({fused} chain(s) fused, {rewrites} in-place rewrite(s)"
        )
        if self.arena:
            line += (
                f"; arena {self.arena['baseline_bytes']} -> "
                f"{self.arena['arena_bytes']} B"
            )
        line += ")"
        lines = [line]
        if self.fusion:
            for d in self.fusion["fused"]:
                lines.append(
                    f"  {d['primary']} <- {' + '.join(d['absorbed'])} "
                    f"({d['fused_type']})"
                )
            for r in self.fusion["rewrites"]:
                lines.append(
                    f"  in-place: {r['layer']} now writes {r['new_top']} "
                    f"(was {r['old_top']})"
                )
        for finding in self.findings:
            lines.append(
                f"  [{finding.rule}/{finding.severity}] "
                f"{finding.layer or '<net>'}: {finding.message}"
            )
        return lines


@dataclass
class FusecheckReport:
    """Top-level document: one entry per (net, team size)."""

    reports: List[NetFuseReport] = field(default_factory=list)

    @property
    def findings(self) -> List[Finding]:
        out: List[Finding] = []
        for report in self.reports:
            out.extend(report.findings)
        return out

    @property
    def ok(self) -> bool:
        return all(r.gate_ok for r in self.reports)

    def to_json(self) -> dict:
        return {
            "ok": self.ok,
            "reports": [r.to_json() for r in self.reports],
        }

    def summary_lines(self) -> List[str]:
        lines: List[str] = []
        for report in self.reports:
            lines.extend(report.summary_lines())
        lines.append("verdict: " + ("OK" if self.ok else "VIOLATIONS FOUND"))
        return lines


def _with_batch(spec: NetSpec, batch: Optional[int]) -> NetSpec:
    """A deep copy of ``spec`` with every feeder's batch extent patched,
    mirroring what ``infer_net(batch=...)`` does symbolically so the
    live net and the symbolic costs describe the same workload."""
    import copy

    if batch is None:
        return spec
    patched = copy.deepcopy(spec)
    for layer_spec in patched.layers:
        if "batch_size" in layer_spec.params:
            layer_spec.params["batch_size"] = batch
    patched.input_shapes = [
        [batch, *shape[1:]] for shape in patched.input_shapes
    ]
    return patched


def _fused_layer_classes():
    from repro.framework.layers.fused import (
        FusedConvolutionLayer,
        FusedEltwiseReLU,
        FusedInnerProductReLU,
        FusedScaleBias,
    )

    return [
        FusedConvolutionLayer,
        FusedInnerProductReLU,
        FusedEltwiseReLU,
        FusedScaleBias,
    ]


def check_fuse(
    spec: NetSpec,
    *,
    net_name: str = "",
    phase: str = "TRAIN",
    threads: int = 8,
    batch: Optional[int] = None,
) -> NetFuseReport:
    """Run the static stages (1-6 above) for one net at one team size."""
    from repro.analysis.footprint import analyze_classes
    from repro.analysis.netcheck import check_spec
    from repro.analysis.plancheck import plan_spec
    from repro.compiler.fuse import FusionError, fuse_spec
    from repro.framework.net import Net
    from repro.simulator.cost_model import net_costs, spec_costs

    label = net_name or spec.name or "<anonymous>"
    report = NetFuseReport(
        net=label, phase=phase, batch=batch, threads=threads)

    # 1. transform
    try:
        fused_spec, fusion = fuse_spec(spec)
    except (FusionError, ValueError, KeyError) as exc:
        report.findings.append(Finding(
            "FU001", ERROR, "", f"fusion pass failed for {label!r}: {exc}"))
        return report
    report.fusion = fusion.to_json()
    if not fusion.fused and not fusion.rewrites:
        report.findings.append(Finding(
            "FU005", INFO, "",
            f"no fusable chains or in-place opportunities in {label!r}"))

    # 2. netcheck + shape parity on the surviving blobs
    base_check = check_spec(spec, phase=phase, threads=[threads], batch=batch)
    fused_check = check_spec(
        fused_spec, phase=phase, threads=[threads], batch=batch)
    if not fused_check.ok:
        for f in fused_check.findings:
            if f.severity == ERROR:
                report.findings.append(Finding(
                    "FU002", ERROR, f.layer,
                    f"fused spec fails netcheck [{f.rule}]: {f.message}"))
    for name, shape in fused_check.shapes.items():
        base_shape = base_check.shapes.get(name)
        if base_shape is not None and tuple(base_shape) != tuple(shape):
            report.findings.append(Finding(
                "FU002", ERROR, name,
                f"shape parity violated at blob {name!r}: unfused "
                f"{tuple(base_shape)} vs fused {tuple(shape)}"))

    # 3. footprint lint of the fused layer classes
    for cls_name, layer_report in analyze_classes(
            _fused_layer_classes()).items():
        for f in layer_report.findings:
            report.findings.append(Finding(
                f.rule, f.severity, cls_name, f.message, f.location))

    # 4 + 5 need a live net; a spec that cannot build is a compiler
    # failure for zoo nets and a hard stop either way.
    net = None
    if fused_check.ok:
        try:
            net = Net(_with_batch(fused_spec, batch), phase=phase)
            net.forward()
        except Exception as exc:
            report.findings.append(Finding(
                "FU001", ERROR, "",
                f"fused net for {label!r} cannot be built/run: {exc}"))
            net = None
    if net is not None:
        from repro.compiler.arena import plan_arena

        arena = plan_arena(net)
        report.arena = arena.to_json()
        for a, b in arena.overlap_violations():
            report.findings.append(Finding(
                "FU003", ERROR, a,
                f"arena aliasing: blobs {a!r} and {b!r} share storage "
                f"while simultaneously live"))

        live = net_costs(net)
        symbolic = spec_costs(fused_spec, phase=phase, batch=batch)
        if len(live) != len(symbolic):
            report.findings.append(Finding(
                "FU004", ERROR, "",
                f"fused cost parity broken: net_costs has {len(live)} "
                f"entries, spec_costs {len(symbolic)}"))
        else:
            for lc, sc in zip(live, symbolic):
                if lc != sc:
                    report.findings.append(Finding(
                        "FU004", ERROR, lc.name,
                        f"fused cost parity broken at {lc.key}: "
                        f"net={lc} vs spec={sc}"))
                    break

    # 6. plan lint of the fused spec
    plan_report = plan_spec(
        fused_spec, net_name=label, threads=threads, batch=batch)
    report.predicted_us = plan_report.predicted_us
    report.uniform_us = plan_report.uniform_us
    report.findings.extend(plan_report.findings)
    return report


def certify_fuse(
    net_name: str,
    *,
    threads: int = 8,
    iters: int = 2,
    batch: int = 4,
) -> Tuple[List[Finding], Optional[object]]:
    """Stage 7: bitwise replay of the fused+arena net vs the unfused
    sequential baseline.  Returns ``(findings, plan)``."""
    from repro.analysis.detcheck import capture_trajectory, first_divergence
    from repro.analysis.plancheck import plan_spec
    from repro.compiler.arena import apply_arena
    from repro.compiler.fuse import fuse_spec
    from repro.zoo.build import _SPECS

    if net_name not in _SPECS:
        raise KeyError(f"unknown zoo net {net_name!r}")
    findings: List[Finding] = []
    fused_spec, _ = fuse_spec(_SPECS[net_name][0]())
    plan_report = plan_spec(
        fused_spec, net_name=net_name, threads=threads, batch=batch)
    findings.extend(
        f for f in plan_report.findings if f.severity == ERROR)
    if findings or plan_report.plan is None:
        return findings, plan_report.plan
    plan = plan_report.plan

    baseline = capture_trajectory(net_name, iters, batch=batch)
    fused = capture_trajectory(
        net_name, iters, batch=batch, threads=threads, mode="blockwise",
        plan=plan,
        spec_transform=lambda s: fuse_spec(s)[0],
        post_build=apply_arena,
    )
    if baseline.param_names != fused.param_names:
        findings.append(Finding(
            "FU201", ERROR, "",
            f"fused net's learnable parameters differ from the "
            f"baseline's: {list(fused.param_names)} vs "
            f"{list(baseline.param_names)}"))
        return findings, plan
    divergence = first_divergence(baseline, fused)
    if divergence is not None:
        findings.append(Finding(
            "FU201", ERROR, divergence.layer,
            f"fused+arena replay diverges from the unfused sequential "
            f"baseline: {divergence.describe()}"))
    else:
        findings.append(Finding(
            "FU202", INFO, "",
            f"fused+arena replay bitwise-identical to the unfused "
            f"sequential baseline ({iters} iters, batch {batch}, "
            f"{threads} thread(s))"))
    return findings, plan
