"""Concurrency certifier: static sync lint + interleaving model checking.

The paper's runtime stands on one OpenMP-shaped primitive set —
:class:`~repro.core.team.ThreadTeam` barriers, the critical lock, the
ordered turn — and every other certifier (detcheck, rescheck, …) takes
the *correct use* of those primitives on faith.  synccheck certifies it
from two sides:

1. **Static** (:mod:`repro.analysis.synclint`, SY001-SY006): an AST
   pass over ``repro.core`` / ``repro.compiler`` / ``repro.resilience``
   extracts every threading primitive, builds the inter-procedural
   lock-acquisition graph, and lints lock-order cycles, locks held
   across barriers or blocking calls, bare condition waits, unguarded
   module-global writes, and barrier divergence across code paths.

2. **Dynamic** (:mod:`repro.analysis.interleave`, SY101-SY104): the
   program under test runs with a :class:`CheckerSync` backend that
   virtualizes every primitive and fully serializes the threads; a
   CHESS-style explorer (iterative context bounding, default 2
   preemptions) enumerates schedules, pruning alternatives whose
   pending operations commute — chunk pairs certified independent by
   the layers' declared write footprints, barrier-release permutations.
   Verdicts: deadlock, exception, and digest divergence for
   configurations whose reduction tier promises schedule-invariant
   bits.  Every verdict carries a serialized schedule that
   :meth:`ModelChecker.replay` re-executes deterministically.

The checker certifies *itself* the way rescheck does — by seeded
defects (SY201/SY202): a :class:`~repro.resilience.faults.FaultPlan`
carrying :class:`~repro.resilience.faults.LockOrderInversion` and
:class:`~repro.resilience.faults.BarrierSkip` descriptors is expanded
into known-deadlocking team programs, and the gate requires the
explorer to rediscover each one as a deadlock whose recorded schedule
replays faithfully.

CLI: ``python -m repro.analysis synccheck --net lenet --threads 1,2,8
--gate`` (also ``--json``, ``--preemptions N``, ``--trace PATH`` to
dump replayable schedules, ``--replay PATH`` to re-execute one, and
``--static-only`` for the lint alone).
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.codes import CODE_CATALOGUE
from repro.analysis.interleave import (
    TRACE_VERSION,
    CheckerSync,
    ExplorationResult,
    ModelChecker,
    Op,
    RunRecord,
    schedule_from_json,
)
from repro.analysis.report import ERROR, Finding
from repro.analysis.synclint import lint_sync

DEFAULT_NETS = ("lenet", "cifar10", "mlp")
DEFAULT_THREADS = (1, 2, 8)
#: Reduction mode model-checked by default: ordered is the paper's
#: deterministic-per-T default and exercises the ordered-turn protocol
#: (the hairiest primitive) on every backward pass.
DEFAULT_MODE = "ordered"
#: Schedule budget per configuration.  Two-thread configurations
#: exhaust their 2-preemption space well inside this; eight-thread
#: configurations truncate (reported as SY104, a warning not a gate
#: failure — the exhaustiveness claim is made at <= 2 threads).
DEFAULT_MAX_RUNS = 64


def _finding(code: str, layer: str, message: str,
             location: str = "") -> Finding:
    pass_name, severity, _ = CODE_CATALOGUE[code]
    return Finding(rule=code, severity=severity, layer=layer,
                   message=message, location=location)


# ---------------------------------------------------------------------------
# programs under test
# ---------------------------------------------------------------------------
def _solver_digest(solver) -> int:
    """CRC-32 over the loss and every learnable parameter's bytes —
    bit-level fingerprint of one training step's observable output."""
    digest = zlib.crc32(struct.pack("<d", solver.loss_history[-1]))
    for blob in solver.net.learnable_params:
        digest = zlib.crc32(blob.flat_data.tobytes(), digest)
    return digest


def zoo_program(name: str, threads: int, mode: str,
                batch: Optional[int] = 4,
                iters: int = 1) -> Callable[[CheckerSync], int]:
    """Build a model-checkable program: train ``name`` for ``iters``
    steps on a ``threads``-thread team with reduction ``mode``.

    The returned callable is self-contained: each schedule gets a fresh
    team, executor, net, and solver, so the schedule is the only thing
    that varies between runs.
    """

    def program(sync: CheckerSync) -> int:
        from repro.analysis.detcheck import _build_solver
        from repro.core import ParallelExecutor
        from repro.core.team import ThreadTeam

        team = ThreadTeam(threads, sync=sync)
        try:
            executor = ParallelExecutor(
                num_threads=threads, reduction=mode, team=team
            )
            try:
                solver = _build_solver(name, iters, batch, executor)
                solver.step(iters)
                return _solver_digest(solver)
            finally:
                executor.close()
        finally:
            team.shutdown()

    return program


def chunk_independence(name: str,
                       batch: Optional[int] = 4) -> Callable[[Op, Op], bool]:
    """Build the chunk-commutativity oracle for ``name`` from its
    layers' declared write footprints.

    Two pending chunk grants commute when they cannot touch the same
    bytes: different layers (the executor separates layers with region
    barriers, so co-pending cross-layer chunks are already
    data-independent), different phases (same reason), or same
    layer+phase with disjoint ``[lo, hi)`` ranges under a footprint
    that certifies sample-disjoint writes (forward) or
    sample-disjoint/privatized-reduction writes (backward).  Anything
    uncertified is dependent and both orders are explored.
    """
    from repro.analysis.detcheck import _build_solver
    from repro.framework.layer import REDUCTION, SAMPLE_DISJOINT

    solver = _build_solver(name, 1, batch, None)
    decls = {layer.name: layer.footprint() for layer in solver.net.layers}

    def independent(a: Op, b: Op) -> bool:
        layer_a, phase_a, lo_a, hi_a = a.payload
        layer_b, phase_b, lo_b, hi_b = b.payload
        if layer_a != layer_b or phase_a != phase_b:
            return True
        if not (hi_a <= lo_b or hi_b <= lo_a):
            return False  # overlapping ranges never commute
        decl = decls.get(layer_a)
        if decl is None:
            return False
        if phase_a == "forward":
            return decl.forward == SAMPLE_DISJOINT
        return decl.backward in (SAMPLE_DISJOINT, REDUCTION)

    return independent


def seeded_program(fault) -> Callable[[CheckerSync], int]:
    """Expand a seeded-defect descriptor into its team program."""
    from repro.resilience.faults import BarrierSkip, LockOrderInversion

    if isinstance(fault, LockOrderInversion):

        def program(sync: CheckerSync) -> int:
            from repro.core.team import ThreadTeam

            team = ThreadTeam(fault.threads, sync=sync)
            try:

                def body(ctx):
                    def noop() -> None:
                        pass

                    # ABBA: even threads take the ordered turn then the
                    # critical lock; odd threads nest the other way.
                    if ctx.thread_id % 2 == 0:
                        ctx.ordered(lambda: ctx.critical(noop))
                    else:
                        ctx.critical(lambda: ctx.ordered(noop))

                team.parallel(body)
            finally:
                team.shutdown()
            return 0

        return program

    if isinstance(fault, BarrierSkip):

        def program(sync: CheckerSync) -> int:
            from repro.core.team import ThreadTeam

            team = ThreadTeam(fault.threads, sync=sync)
            try:

                def body(ctx):
                    if ctx.thread_id != fault.skip_tid:
                        ctx.barrier()
                    ctx.barrier()

                team.parallel(body)
            finally:
                team.shutdown()
            return 0

        return program

    raise TypeError(
        f"no seeded program for fault {type(fault).__name__}"
    )


# ---------------------------------------------------------------------------
# report
# ---------------------------------------------------------------------------
@dataclass
class ConfigResult:
    """Model-checking outcome for one (net, threads, mode) tuple."""

    net: str
    threads: int
    mode: str
    tier: str
    explored: int
    truncated: bool
    deadlocks: int
    errors: int
    digests: int

    def to_json(self) -> dict:
        return {
            "net": self.net, "threads": self.threads, "mode": self.mode,
            "tier": self.tier, "explored": self.explored,
            "truncated": self.truncated, "deadlocks": self.deadlocks,
            "errors": self.errors, "distinct_digests": self.digests,
        }


@dataclass
class SynccheckReport:
    findings: List[Finding] = field(default_factory=list)
    configs: List[ConfigResult] = field(default_factory=list)
    certifications: List[dict] = field(default_factory=list)
    #: Replayable schedule traces for every dynamic verdict, in finding
    #: order; ``--trace`` serializes these.
    traces: List[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(f.severity == ERROR for f in self.findings)

    def to_json(self) -> dict:
        return {
            "ok": self.ok,
            "findings": [f.to_json() for f in self.findings],
            "configs": [c.to_json() for c in self.configs],
            "certifications": self.certifications,
            "traces": self.traces,
        }

    def summary_lines(self) -> List[str]:
        lines = []
        for f in self.findings:
            loc = f" [{f.location}]" if f.location else ""
            lines.append(
                f"{f.rule} {f.severity:<7} {f.layer}: {f.message}{loc}"
            )
        for c in self.configs:
            extra = " TRUNCATED" if c.truncated else ""
            lines.append(
                f"-- {c.net} t={c.threads} {c.mode} ({c.tier}): "
                f"{c.explored} schedules, {c.deadlocks} deadlocks, "
                f"{c.errors} errors, {c.digests} digest(s){extra}"
            )
        for cert in self.certifications:
            lines.append(
                f"-- seeded {cert['defect']}: "
                f"{'rediscovered' if cert['found'] else 'MISSED'}, "
                f"replay {'faithful' if cert['replayed'] else 'BROKEN'}"
            )
        lines.append(
            "synccheck: OK" if self.ok else "synccheck: FINDINGS"
        )
        return lines


# ---------------------------------------------------------------------------
# model-checking drivers
# ---------------------------------------------------------------------------
def _schedule_preview(record: RunRecord, limit: int = 6) -> str:
    steps = [f"t{s.tid}:{s.kind}({s.resource})"
             for s in record.schedule[-limit:]]
    prefix = ["..."] if len(record.schedule) > limit else []
    return " -> ".join(prefix + steps)


def check_config(
    name: str,
    threads: int,
    mode: str = DEFAULT_MODE,
    batch: Optional[int] = 4,
    iters: int = 1,
    preemptions: int = 2,
    max_runs: int = DEFAULT_MAX_RUNS,
) -> Tuple[ConfigResult, List[Finding], List[dict]]:
    """Model-check one zoo configuration; returns (result, findings,
    traces)."""
    from repro.core.reduction import invariance_tier

    tier = invariance_tier(mode, True)
    config = {
        "kind": "zoo", "net": name, "threads": threads, "mode": mode,
        "batch": batch, "iters": iters, "preemptions": preemptions,
    }
    checker = ModelChecker(
        zoo_program(name, threads, mode, batch, iters),
        preemptions=preemptions, max_runs=max_runs,
        independent=chunk_independence(name, batch),
    )
    result = checker.explore()

    where = f"{name} t={threads} {mode}"
    findings: List[Finding] = []
    traces: List[dict] = []

    for record in result.deadlocks[:1]:
        findings.append(_finding(
            "SY101", where,
            f"deadlock under interleaving after {len(record.schedule)} "
            f"sync points ({record.preemptions} preemptions); pending: "
            f"{json.dumps(record.deadlock['pending'])}",
            _schedule_preview(record),
        ))
        traces.append(record.trace_json(config))
    for record in result.errors[:1]:
        findings.append(_finding(
            "SY102", where,
            f"{record.error_type} raised under interleaving "
            f"({record.preemptions} preemptions): "
            f"{(record.error or '').strip().splitlines()[-1]}",
            _schedule_preview(record),
        ))
        traces.append(record.trace_json(config))
    digests = result.digests
    if len(digests) > 1 and tier in ("bitwise_invariant",
                                     "deterministic_per_t"):
        findings.append(_finding(
            "SY103", where,
            f"{len(digests)} distinct output digests across "
            f"{result.explored} schedules but tier {tier!r} promises "
            "schedule-invariant bits",
        ))
        for record in result.runs:
            if record.status == "complete":
                traces.append(record.trace_json(config))
    if result.truncated:
        findings.append(_finding(
            "SY104", where,
            f"exploration truncated at {max_runs} schedules before "
            f"exhausting the {preemptions}-preemption space",
        ))

    return (
        ConfigResult(
            net=name, threads=threads, mode=mode, tier=tier,
            explored=result.explored, truncated=result.truncated,
            deadlocks=len(result.deadlocks), errors=len(result.errors),
            digests=len(digests),
        ),
        findings,
        traces,
    )


def certify_seeded(
    preemptions: int = 2,
    max_runs: int = DEFAULT_MAX_RUNS,
) -> Tuple[List[dict], List[Finding], List[dict]]:
    """Seeded-defect certification: the model checker must rediscover a
    planted lock-order inversion and a planted barrier skip, and the
    recorded schedule must replay step for step."""
    from repro.resilience.faults import (
        BarrierSkip,
        FaultPlan,
        LockOrderInversion,
    )

    plan = FaultPlan(LockOrderInversion(), BarrierSkip())
    certs: List[dict] = []
    findings: List[Finding] = []
    traces: List[dict] = []
    for fault in plan:
        defect = type(fault).__name__
        checker = ModelChecker(
            seeded_program(fault),
            preemptions=preemptions, max_runs=max_runs,
        )
        result = checker.explore()
        deadlocks = result.deadlocks
        found = bool(deadlocks)
        replayed = False
        if found:
            replayed, _record = checker.replay(deadlocks[0].schedule)
        certs.append({
            "defect": defect, "explored": result.explored,
            "found": found, "replayed": replayed,
        })
        config = {"kind": "seeded", "defect": defect,
                  "preemptions": preemptions}
        if found and replayed:
            record = deadlocks[0]
            findings.append(_finding(
                "SY202", defect,
                f"seeded defect rediscovered as a deadlock in "
                f"{result.explored} schedule(s) and replayed "
                "faithfully",
                _schedule_preview(record),
            ))
            traces.append(record.trace_json(config))
        else:
            reason = ("no deadlocking schedule found" if not found
                      else "recorded schedule did not replay faithfully")
            findings.append(_finding(
                "SY201", defect,
                f"seeded defect NOT certified: {reason} "
                f"({result.explored} schedules explored)",
            ))
    return certs, findings, traces


# ---------------------------------------------------------------------------
# orchestration
# ---------------------------------------------------------------------------
def run_synccheck(
    nets: Sequence[str] = DEFAULT_NETS,
    threads: Sequence[int] = DEFAULT_THREADS,
    mode: str = DEFAULT_MODE,
    batch: Optional[int] = 4,
    iters: int = 1,
    preemptions: int = 2,
    max_runs: int = DEFAULT_MAX_RUNS,
    static_only: bool = False,
    certify: bool = True,
) -> SynccheckReport:
    """Full certification: static lint, seeded-defect certification,
    then model checking of every (net, threads) configuration."""
    report = SynccheckReport()
    report.findings.extend(lint_sync())
    if static_only:
        return report
    if certify:
        certs, findings, traces = certify_seeded(
            preemptions=preemptions, max_runs=max_runs
        )
        report.certifications = certs
        report.findings.extend(findings)
        report.traces.extend(traces)
    for name in nets:
        for t in threads:
            result, findings, traces = check_config(
                name, t, mode=mode, batch=batch, iters=iters,
                preemptions=preemptions, max_runs=max_runs,
            )
            report.configs.append(result)
            report.findings.extend(findings)
            report.traces.extend(traces)
    return report


# ---------------------------------------------------------------------------
# trace replay
# ---------------------------------------------------------------------------
def replay_trace(trace: dict) -> Tuple[bool, RunRecord]:
    """Re-execute a serialized ``--trace`` entry deterministically.

    Rebuilds the program from the trace's embedded config (zoo
    configuration or seeded defect) and forces the recorded schedule;
    returns (faithful, record).
    """
    if trace.get("version") != TRACE_VERSION:
        raise ValueError(
            f"unsupported trace version {trace.get('version')!r} "
            f"(expected {TRACE_VERSION!r})"
        )
    config = trace.get("config") or {}
    kind = config.get("kind")
    if kind == "zoo":
        program = zoo_program(
            config["net"], config["threads"], config["mode"],
            config.get("batch"), config.get("iters", 1),
        )
        independent = chunk_independence(
            config["net"], config.get("batch")
        )
    elif kind == "seeded":
        from repro.resilience import faults as fault_mod

        fault = getattr(fault_mod, config["defect"])()
        program = seeded_program(fault)
        independent = None
    else:
        raise ValueError(f"trace config kind {kind!r} not replayable")
    checker = ModelChecker(
        program, preemptions=int(config.get("preemptions", 2)),
        independent=independent,
    )
    schedule = schedule_from_json(trace["schedule"])
    return checker.replay(schedule)
