"""Dynamic shadow-memory race detection over a whole net.

For every layer (forward) and every backward loop, the detector asks:
*if the runtime dealt this layer's chunk schedule to N threads, would
any two threads write the same memory?*  It answers by replaying each
simulated thread's chunks against an identical memory image (see
:mod:`repro.analysis.shadow`) and intersecting the recovered write
sets.  Reduction loops get fresh private gradient buffers per thread —
exactly the privatization the real runtime performs — so a layer is
flagged only when it bypasses the protocol (e.g. accumulating into the
shared parameter diff directly).

The check is schedule-faithful: iteration ownership comes from
:func:`repro.core.parallel_net.iteration_owners`, the same plan the
executor uses.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.footprint import analyze_classes, builtin_layer_classes
from repro.analysis.lint import lint_runtime
from repro.analysis.report import (
    AnalysisReport,
    DynamicReport,
    Race,
    StaticReport,
)
from repro.analysis.shadow import (
    ShadowTracker,
    collect_tracked_arrays,
    owner_runs,
    thread_write_sets,
)


def run_static() -> StaticReport:
    """Static pass: classify every registered layer + runtime lint."""
    classes = builtin_layer_classes()
    return StaticReport(
        layers=analyze_classes(list(classes.values())),
        runtime_findings=lint_runtime(),
    )


def _find_races(
    races: List[Race],
    layer_name: str,
    phase: str,
    tracked,
    masks: List[List[np.ndarray]],
) -> None:
    """Intersect per-thread write masks pairwise; first offending pair
    per array is reported (more pairs add noise, not information)."""
    for idx, tr in enumerate(tracked):
        found = False
        for t1 in range(len(masks)):
            if found:
                break
            for t2 in range(t1 + 1, len(masks)):
                if not masks[t1] or not masks[t2]:
                    continue
                overlap = masks[t1][idx] & masks[t2][idx]
                count = int(overlap.sum())
                if count:
                    offsets = tuple(
                        int(x) for x in np.flatnonzero(overlap)[:8]
                    )
                    races.append(Race(
                        layer=layer_name, phase=phase, array=tr.name,
                        threads=(t1, t2), overlap=count,
                        first_offsets=offsets,
                    ))
                    found = True
                    break


def _find_rebind_races(
    races: List[Race],
    layer_name: str,
    phase: str,
    rebinds,
) -> None:
    """Attributes rebound by two or more simulated threads race on the
    attribute slot itself (last writer wins)."""
    seen = set()
    for t1 in range(len(rebinds)):
        for t2 in range(t1 + 1, len(rebinds)):
            for attr in sorted(rebinds[t1] & rebinds[t2]):
                if attr in seen:
                    continue
                seen.add(attr)
                races.append(Race(
                    layer=layer_name, phase=phase,
                    array=f"attr:{layer_name}.{attr} (rebind)",
                    threads=(t1, t2), overlap=1, first_offsets=(),
                ))


def run_dynamic(
    net,
    net_name: str,
    num_threads: int,
    schedule=None,
    plan=None,
) -> DynamicReport:
    """Shadow-memory race detection over one net at one thread count.

    ``plan`` optionally supplies a per-layer
    :class:`~repro.core.plan.ExecutionPlan`; each planned layer's chunk
    ownership is then replayed under its own thread count, granularity
    and schedule instead of the uniform ``schedule`` (how plancheck's
    acceptance tests run the FP race gate over planned configurations).
    """
    from repro.core.parallel_net import iteration_owners
    from repro.core.plan import plan_schedule_for

    def layer_schedule(layer_name: str, space: int):
        if plan is not None:
            layer_plan = plan.for_layer(layer_name)
            if layer_plan is not None:
                return plan_schedule_for(layer_plan, space)
        return schedule

    report = DynamicReport(net=net_name, num_threads=num_threads)
    tracker = ShadowTracker()

    # ---- forward, layer by layer, advancing canonical state ----
    for layer, bottom, top in zip(net.layers, net.bottoms, net.tops):
        layer.reshape(bottom, top)
        space = layer.forward_space(bottom, top)
        if space <= 0:
            continue
        owners = iteration_owners(
            space, num_threads, layer_schedule(layer.name, space)
        )
        runs = owner_runs(owners)
        tracked = collect_tracked_arrays(net, layer, bottom, top)

        def run_chunks(tid: int, layer=layer, bottom=bottom, top=top,
                       runs=runs) -> None:
            for lo, hi, owner in runs:
                if owner == tid:
                    layer.forward_chunk(bottom, top, lo, hi)

        masks, rebinds = thread_write_sets(
            tracked, num_threads, run_chunks, tracker, layer=layer
        )
        _find_races(report.races, layer.name, "forward", tracked, masks)
        _find_rebind_races(report.races, layer.name, "forward", rebinds)
        layer.forward_chunk(bottom, top, 0, space)
        layer.forward_finalize(bottom, top)
        report.layers_checked.append(f"{layer.name}/forward")

    # ---- backward, reverse order, loop by loop ----
    net._seed_loss_diffs()
    for i in range(len(net.layers) - 1, -1, -1):
        layer = net.layers[i]
        if not any(net.bottom_need_backward[i]) and not layer.blobs:
            continue
        top = net.tops[i]
        bottom = net.bottoms[i]
        propagate_down = net.bottom_need_backward[i]
        for loop in layer.backward_loops(top, propagate_down, bottom):
            if loop.space <= 0:
                continue
            owners = iteration_owners(
                loop.space, num_threads,
                layer_schedule(layer.name, loop.space),
            )
            runs = owner_runs(owners)
            tracked = collect_tracked_arrays(net, layer, bottom, top)

            def run_chunks(tid: int, loop=loop, runs=runs) -> None:
                if loop.reduction:
                    # the privatization the real runtime performs
                    grads = [np.zeros_like(t) for t in loop.grad_targets]
                else:
                    grads = list(loop.grad_targets)
                for lo, hi, owner in runs:
                    if owner == tid:
                        loop.body(lo, hi, grads)

            masks, rebinds = thread_write_sets(
                tracked, num_threads, run_chunks, tracker, layer=layer
            )
            _find_races(report.races, layer.name, "backward", tracked, masks)
            _find_rebind_races(report.races, layer.name, "backward", rebinds)
            loop.body(0, loop.space, loop.grad_targets)
        report.layers_checked.append(f"{layer.name}/backward")
    return report


def run_analysis(
    nets: Sequence[Tuple[str, Callable[[], object]]] = (),
    threads: Sequence[int] = (2,),
    static: bool = True,
) -> AnalysisReport:
    """Full analysis: one static pass, one dynamic run per (net, T).

    ``nets`` is a sequence of ``(name, factory)`` pairs; the factory
    builds a fresh net so successive thread counts replay the same
    initial state.
    """
    static_report = run_static() if static else StaticReport()
    dynamic: List[DynamicReport] = []
    for name, factory in nets:
        for num_threads in threads:
            net = factory()
            dynamic.append(run_dynamic(net, name, num_threads))
    return AnalysisReport(static=static_report, dynamic=dynamic)
