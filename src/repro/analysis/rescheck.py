"""Resilience certifier: static state-write lint + dynamic recovery gate.

Fourth coded analysis pass (after FP/RT, NG, DC).  The paper's
convergence-invariance claim survives a real training run only if the
runtime can crash, resume, and contain faults *without forking the
certified trajectory* — that is what this pass proves, per zoo net and
reduction mode:

1. **Static lint** (RS001-RS004) — parses the runtime sources and
   inspects the registered layer / batch-source classes for state that
   would escape the resilience machinery: raw ``np.savez``/``np.save``
   outside the atomic checkpoint writer (a crash mid-save destroys the
   previous snapshot), raw ``np.load`` (corruption surfaces as a zipfile
   traceback instead of a coded error), per-forward RNG streams the
   checkpoint cannot capture, and batch sources without a cursor.
2. **Resume certification** (RS101/RS102) — for each net x mode x T:
   train ``iters`` iterations uninterrupted, then train with a
   checkpoint+fresh-process-style resume at the midpoint, and diff the
   two trajectories bitwise (loss, update values, parameters, every
   iteration).  Within each certified mode's invariance tier the resumed
   run must be byte-identical.  Save -> load -> save must also be
   bitwise stable (no silent state loss).
3. **Fault certification** (RS201-RS204) — the deterministic injection
   harness (:mod:`repro.resilience.faults`) fires every fault class and
   the certifier checks the *configured* recovery behaviour: a chunk
   abort must surface its root cause and leave the thread team reusable
   (no hang, no torn state); a layer exception under a
   :class:`~repro.resilience.guards.HealthGuard` must restore the
   pre-iteration state bitwise; NaN injection must honour each guard
   policy (halt / skip-batch / rollback); a crash after a checkpoint
   must resume onto the reference trajectory; and corrupt / truncated /
   old-format checkpoint files must be rejected with coded errors.

``--gate`` fails on any ERROR finding, like the sibling passes.
"""

from __future__ import annotations

import ast
import os
import shutil
import tempfile
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.codes import CODE_CATALOGUE
from repro.analysis.detcheck import (
    IterationSnapshot,
    Trajectory,
    _build_solver,
    capture_trajectory,
    first_divergence,
)
from repro.analysis.report import ERROR, Finding
from repro.analysis.rng_lint import _dotted, class_constructs_rng

#: Modes certified by default; atomic's tier promises nothing bitwise a
#: resume could be checked against, so it is opt-in (mirrors detcheck).
DEFAULT_MODES = ("blockwise", "ordered", "tree")
DEFAULT_THREADS = (1, 2, 8)

#: Wall-clock bound for any injected-fault run; exceeding it is a hang
#: (RS201), the exact failure mode a broken barrier abort produces.
FAULT_TIMEOUT_S = 60.0

#: Files allowed to call np.savez/np.load directly: the atomic writer
#: itself is the single place raw serialization is supposed to live.
_WRITER_ALLOWLIST = ("resilience/checkpoint.py",)


# ---------------------------------------------------------------------------
# static lint (RS001-RS004)
# ---------------------------------------------------------------------------
_RAW_WRITERS = {"savez", "savez_compressed", "save"}
_NUMPY_NAMES = ("np", "numpy")


def _default_state_roots() -> List[Path]:
    import repro.core
    import repro.data
    import repro.framework
    import repro.resilience
    import repro.tools

    return [Path(pkg.__file__).parent for pkg in (
        repro.core, repro.framework, repro.data, repro.resilience,
        repro.tools,
    )]


def lint_state_writes(
    roots: Optional[Iterable[Path]] = None,
) -> List[Finding]:
    """RS001/RS002: raw serialization outside the atomic writer."""
    findings: List[Finding] = []
    for root in (roots if roots is not None else _default_state_roots()):
        root = Path(root)
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for path in files:
            posix = path.as_posix()
            if any(posix.endswith(allowed) for allowed in _WRITER_ALLOWLIST):
                continue
            try:
                tree = ast.parse(path.read_text())
            except (OSError, SyntaxError) as exc:
                findings.append(Finding(
                    rule="RS001", severity=ERROR, layer=f"<{path.stem}>",
                    message=f"cannot parse {path}: {exc}",
                ))
                continue
            findings.extend(_scan_state_calls(tree, path))
    return findings


def _scan_state_calls(tree: ast.AST, path: Path) -> List[Finding]:
    findings: List[Finding] = []
    where = f"<{path.stem}>"
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        chain = _dotted(node.func)
        if chain is None or len(chain) < 2 or chain[-2] not in _NUMPY_NAMES:
            continue
        if chain[-1] in _RAW_WRITERS:
            findings.append(Finding(
                rule="RS001", severity=ERROR, layer=where,
                message=(
                    f"np.{chain[-1]} writes state in place: a crash "
                    "mid-save destroys the previous snapshot; route the "
                    "write through repro.resilience.checkpoint "
                    "(atomic temp + os.replace, CRC-32)"
                ),
                location=f"{path}:{node.lineno}",
            ))
        elif chain[-1] == "load":
            findings.append(Finding(
                rule="RS002", severity=ERROR, layer=where,
                message=(
                    "np.load without digest verification: a corrupt or "
                    "truncated file surfaces a raw zipfile error; use "
                    "repro.resilience.checkpoint's verified loaders"
                ),
                location=f"{path}:{node.lineno}",
            ))
    return findings


def _assigns_self_rng(cls) -> bool:
    """Does the class source assign ``self._rng`` (the capture hook)?"""
    from repro.analysis.rng_lint import _own_method_trees

    for node in _own_method_trees(cls).values():
        for sub in ast.walk(node):
            if not isinstance(sub, (ast.Assign, ast.AnnAssign)):
                continue
            targets = sub.targets if isinstance(sub, ast.Assign) \
                else [sub.target]
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and target.attr == "_rng"
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    return True
    return False


def lint_rng_capture(
    classes: Optional[Sequence[type]] = None,
) -> List[Finding]:
    """RS003: per-forward random streams must be checkpoint-capturable.

    A layer that declares ``draws='per_forward'`` holds a live stream
    whose position is trajectory state; :meth:`Layer.rng_state` captures
    it through the ``self._rng`` convention.  A per-forward drawer that
    stores its generator anywhere else silently forks on resume.
    """
    from repro.framework.layer import RNG_PER_FORWARD

    if classes is None:
        from repro.analysis.footprint import builtin_layer_classes

        classes = list(builtin_layer_classes().values())
    findings: List[Finding] = []
    for cls in classes:
        decl = getattr(cls, "rng_provenance", None)
        if decl is None or decl.draws != RNG_PER_FORWARD:
            continue
        constructs = any(class_constructs_rng(c) for c in cls.__mro__
                         if c is not object)
        if constructs and not any(
                _assigns_self_rng(c) for c in cls.__mro__ if c is not object):
            findings.append(Finding(
                rule="RS003", severity=ERROR, layer=cls.__name__,
                message=(
                    "draws per-forward random numbers but never stores "
                    "its generator in self._rng, so rng_state() cannot "
                    "capture the stream; a resumed run would fork the "
                    "draw sequence"
                ),
            ))
    return findings


def lint_batch_sources(
    classes: Optional[Sequence[type]] = None,
) -> List[Finding]:
    """RS004: every concrete batch source must expose its cursor."""
    if classes is None:
        import inspect

        import repro.data.batch_source as module

        classes = [
            cls for _, cls in inspect.getmembers(module, inspect.isclass)
            if cls.__module__ == module.__name__
            and hasattr(cls, "next_batch")
            and not inspect.isabstract(cls)
            and cls.__name__ != "BatchSource"  # the Protocol itself
        ]
    findings: List[Finding] = []
    for cls in classes:
        missing = [name for name in ("get_state", "set_state")
                   if not callable(getattr(cls, name, None))]
        if missing:
            findings.append(Finding(
                rule="RS004", severity=ERROR, layer=cls.__name__,
                message=(
                    f"batch source lacks {'/'.join(missing)}: the stream "
                    "cursor is trajectory state; without it a resumed "
                    "run replays or skips samples"
                ),
            ))
    return findings


def lint_resilience() -> List[Finding]:
    """The full static RS0xx pass."""
    return lint_state_writes() + lint_rng_capture() + lint_batch_sources()


# ---------------------------------------------------------------------------
# resume certification (RS101 / RS102)
# ---------------------------------------------------------------------------
def _capture_segment(solver, iters: int) -> List[IterationSnapshot]:
    net = solver.net
    snapshots = []
    for _ in range(iters):
        solver.step(1)
        snapshots.append(IterationSnapshot(
            loss=solver.loss_history[-1],
            updates=tuple(b.flat_diff.copy() for b in net.learnable_params),
            params=tuple(b.flat_data.copy() for b in net.learnable_params),
        ))
    return snapshots


def _state_equal(a: Dict[str, np.ndarray], b: Dict[str, np.ndarray]) -> bool:
    if set(a) != set(b):
        return False
    return all(
        a[k].dtype == b[k].dtype
        and a[k].shape == b[k].shape
        and np.array_equal(a[k], b[k])
        for k in a
    )


def capture_resumed_trajectory(
    name: str,
    iters: int,
    resume_at: int,
    path: str,
    batch: Optional[int] = None,
    threads: int = 0,
    mode: str = "blockwise",
) -> Tuple[Trajectory, bool]:
    """Train with a save at ``resume_at`` and a fresh-solver resume.

    Models the crash/restart cycle exactly: the first solver trains to
    the midpoint and checkpoints; a *brand new* solver (fresh net, fresh
    RNGs, fresh data source — nothing survives but the file) restores it
    and finishes the run.  Returns the stitched trajectory plus whether
    save -> load -> save was bitwise stable (the RS102 roundtrip).
    """
    from repro.core import ParallelExecutor
    from repro.resilience.checkpoint import capture_state, checked_load

    def make_executor():
        if threads == 0:
            return None
        return ParallelExecutor(num_threads=threads, reduction=mode)

    executor = make_executor()
    try:
        first = _build_solver(name, iters, batch, executor)
        snapshots = _capture_segment(first, resume_at)
        first.save_state(path)
    finally:
        if executor is not None:
            executor.close()

    executor = make_executor()
    try:
        second = _build_solver(name, iters, batch, executor)
        second.load_state(path)
        roundtrip_ok = _state_equal(checked_load(path),
                                    capture_state(second))
        snapshots.extend(_capture_segment(second, iters - resume_at))
        trajectory = Trajectory(
            param_names=tuple(b.name
                              for b in second.net.learnable_params),
            param_owners=tuple(second.net.param_owners),
            snapshots=tuple(snapshots),
        )
    finally:
        if executor is not None:
            executor.close()
    return trajectory, roundtrip_ok


@dataclass
class ResumeCertificate:
    """Checkpoint/resume evidence for one (net, reduction mode) pair."""

    net: str
    mode: str
    threads: List[int] = field(default_factory=list)
    iters: int = 0
    resume_at: int = 0
    resume_bitwise: Dict[int, bool] = field(default_factory=dict)
    roundtrip_stable: Dict[int, bool] = field(default_factory=dict)
    findings: List[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(f.severity == ERROR for f in self.findings)

    def to_json(self) -> dict:
        return {
            "net": self.net,
            "mode": self.mode,
            "threads": list(self.threads),
            "iters": self.iters,
            "resume_at": self.resume_at,
            "ok": self.ok,
            "resume_bitwise": {
                str(t): v for t, v in self.resume_bitwise.items()},
            "roundtrip_stable": {
                str(t): v for t, v in self.roundtrip_stable.items()},
            "findings": [f.to_json() for f in self.findings],
        }


def certify_resume(
    net: str,
    mode: str,
    threads: Sequence[int],
    iters: int = 2,
    batch: Optional[int] = 4,
) -> ResumeCertificate:
    """RS101/RS102 for one net x mode across thread counts.

    Both runs of each pair execute at the *same* thread count, so every
    certified mode — bitwise-invariant or deterministic-per-T — must
    reproduce the uninterrupted trajectory byte for byte; a resume that
    diverges has lost state, whatever the tier.
    """
    resume_at = max(1, iters // 2)
    cert = ResumeCertificate(
        net=net, mode=mode, threads=sorted(set(threads)), iters=iters,
        resume_at=resume_at,
    )
    tmpdir = tempfile.mkdtemp(prefix="rescheck-")
    try:
        for t in cert.threads:
            reference = capture_trajectory(
                net, iters, batch, threads=t, mode=mode)
            path = os.path.join(tmpdir, f"{net}-{mode}-{t}.rckp")
            resumed, roundtrip_ok = capture_resumed_trajectory(
                net, iters, resume_at, path, batch=batch, threads=t,
                mode=mode,
            )
            div = first_divergence(reference, resumed)
            cert.resume_bitwise[t] = div is None
            cert.roundtrip_stable[t] = roundtrip_ok
            where = f"{net}/{mode}@T={t}"
            if div is not None:
                cert.findings.append(Finding(
                    rule="RS101", severity=ERROR, layer=where,
                    message=(
                        f"resume at iteration {resume_at} diverges from "
                        f"the uninterrupted run: {div.describe()}; the "
                        "checkpoint lost trajectory state"
                    ),
                ))
            if not roundtrip_ok:
                cert.findings.append(Finding(
                    rule="RS102", severity=ERROR, layer=where,
                    message=(
                        "save -> load -> save is not bitwise stable: "
                        "some captured state is lost or mutated on "
                        "restore"
                    ),
                ))
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)
    return cert


# ---------------------------------------------------------------------------
# fault certification (RS201-RS204)
# ---------------------------------------------------------------------------
def _run_bounded(fn, timeout: float = FAULT_TIMEOUT_S):
    """Run ``fn`` with a wall-clock bound; ('ok'|'error'|'hang', value)."""
    box: dict = {}

    def target() -> None:
        try:
            box["result"] = ("ok", fn())
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            box["result"] = ("error", exc)

    worker = threading.Thread(target=target, daemon=True,
                              name="rescheck-fault-run")
    worker.start()
    worker.join(timeout)
    if worker.is_alive():
        return ("hang", None)
    return box["result"]


def _params_snapshot(solver) -> List[np.ndarray]:
    return [b.flat_data.copy() for b in solver.net.learnable_params]


def _params_equal(solver, saved: List[np.ndarray]) -> bool:
    return all(
        np.array_equal(b.flat_data, s)
        for b, s in zip(solver.net.learnable_params, saved)
    )


def _fault_layer(net) -> str:
    """A layer whose forward runs chunk-parallel: the first with params."""
    for layer in net.layers:
        if layer.blobs:
            return layer.name
    return net.layers[-1].name


def _fault_blob(net) -> str:
    """An activation produced mid-net (the fault layer's first top)."""
    target = _fault_layer(net)
    for layer, tops in zip(net.layers, net.tops):
        if layer.name == target and tops:
            return tops[0].name
    return net.layers[-1].name


def certify_faults(
    net: str,
    threads: int,
    iters: int = 2,
    batch: Optional[int] = 4,
    mode: str = "blockwise",
) -> List[Finding]:
    """RS201-RS204: fire every fault class against one net.

    Runs at a single (the highest requested) thread count under the
    bitwise-invariant mode, where every recovery promise is strongest.
    """
    from repro.core import ParallelExecutor
    from repro.core.team import WorkerError
    from repro.resilience import (
        ChunkAbort,
        CheckpointCorrupt,
        CheckpointError,
        CheckpointFormatError,
        FaultPlan,
        HealthGuard,
        InjectedFault,
        LayerRaise,
        NaNBlob,
        NumericFault,
        corrupt_checkpoint,
        inject,
        truncate_checkpoint,
    )

    findings: List[Finding] = []
    where = f"{net}@T={threads}"

    def fail(rule: str, message: str) -> None:
        findings.append(Finding(
            rule=rule, severity=ERROR, layer=where, message=message,
        ))

    def is_injected(exc: BaseException) -> bool:
        if isinstance(exc, InjectedFault):
            return True
        return (isinstance(exc, WorkerError)
                and isinstance(exc.original, InjectedFault))

    tmpdir = tempfile.mkdtemp(prefix="rescheck-faults-")
    executor = ParallelExecutor(num_threads=threads, reduction=mode)
    try:
        solver = _build_solver(net, iters, batch, executor)
        layer_name = _fault_layer(solver.net)
        blob_name = _fault_blob(solver.net)

        # -- chunk abort: root cause surfaces, team stays usable -------
        plan = FaultPlan(ChunkAbort(layer=layer_name,
                                    iteration=solver.iteration))
        with inject(solver, plan):
            status, value = _run_bounded(lambda: solver.step(1))
        if status == "hang":
            fail("RS201", "chunk abort hung the runtime: a peer thread "
                          "is still blocked on a barrier or ordered turn")
        elif status == "ok":
            fail("RS201", "chunk abort was silently swallowed: the "
                          "iteration completed as if no fault fired")
        elif not is_injected(value):
            fail("RS201", f"chunk abort surfaced "
                          f"{type(value).__name__} instead of the "
                          "injected root cause: the abort path masked "
                          "the originating error")
        # recovery: the same team must run the next region cleanly.
        status, value = _run_bounded(lambda: solver.step(1))
        if status != "ok":
            detail = ("hung" if status == "hang"
                      else f"raised {type(value).__name__}: {value}")
            fail("RS201", f"team is not reusable after a chunk abort: "
                          f"the recovery step {detail}")

        # -- layer exception under a guard: state restored bitwise -----
        solver.guard = HealthGuard(policy="halt")
        before = _params_snapshot(solver)
        plan = FaultPlan(LayerRaise(layer=layer_name,
                                    iteration=solver.iteration,
                                    phase="forward"))
        with inject(solver, plan):
            status, value = _run_bounded(lambda: solver.step(1))
        if status == "hang":
            fail("RS201", "layer exception hung the runtime")
        elif status == "ok":
            fail("RS201", "layer exception was silently swallowed")
        else:
            if not is_injected(value):
                fail("RS201", f"layer exception surfaced "
                              f"{type(value).__name__} instead of the "
                              "injected fault")
            if not _params_equal(solver, before):
                fail("RS201", "guard containment left torn state: "
                              "parameters differ from the pre-iteration "
                              "shadow after a contained exception")
        solver.guard = None

        # -- post-crash resume onto the reference trajectory (RS202) ---
        reference = capture_trajectory(net, iters, batch,
                                       threads=threads, mode=mode)
        crash_path = os.path.join(tmpdir, "crash.rckp")
        crash_executor = ParallelExecutor(num_threads=threads,
                                          reduction=mode)
        try:
            crasher = _build_solver(net, iters, batch, crash_executor)
            resume_at = max(1, iters // 2)
            snapshots = _capture_segment(crasher, resume_at)
            crasher.save_state(crash_path)
            plan = FaultPlan(LayerRaise(layer=layer_name,
                                        iteration=crasher.iteration,
                                        phase="forward"))
            with inject(crasher, plan):
                status, value = _run_bounded(lambda: crasher.step(1))
            if status == "ok" or (status == "error"
                                  and not is_injected(value)):
                fail("RS201", "crash simulation did not raise the "
                              "injected fault")
        finally:
            crash_executor.close()
        resumed_executor = ParallelExecutor(num_threads=threads,
                                            reduction=mode)
        try:
            survivor = _build_solver(net, iters, batch, resumed_executor)
            survivor.load_state(crash_path)
            snapshots.extend(
                _capture_segment(survivor, iters - resume_at))
            resumed = Trajectory(
                param_names=tuple(
                    b.name for b in survivor.net.learnable_params),
                param_owners=tuple(survivor.net.param_owners),
                snapshots=tuple(snapshots),
            )
        finally:
            resumed_executor.close()
        div = first_divergence(reference, resumed)
        if div is not None:
            fail("RS202", f"trajectory resumed from the pre-crash "
                          f"checkpoint diverges from the reference: "
                          f"{div.describe()}")

        # -- NaN injection vs every guard policy (RS203) ----------------
        for policy in ("halt", "skip-batch", "rollback"):
            policy_executor = ParallelExecutor(num_threads=threads,
                                               reduction=mode)
            try:
                victim = _build_solver(net, iters, batch, policy_executor)
                victim.guard = HealthGuard(policy=policy)
                before = _params_snapshot(victim)
                plan = FaultPlan(NaNBlob(blob=blob_name, iteration=0))
                with inject(victim, plan):
                    status, value = _run_bounded(
                        lambda v=victim: v.step(iters))
                if status == "hang":
                    fail("RS203", f"guard policy {policy!r} hung")
                    continue
                if policy == "halt":
                    if status != "error" or not isinstance(value,
                                                           NumericFault):
                        got = ("no error" if status == "ok"
                               else type(value).__name__)
                        fail("RS203", f"halt policy must raise "
                                      f"NumericFault on injected NaN, "
                                      f"got {got}")
                    elif not _params_equal(victim, before):
                        fail("RS203", "halt policy left parameters "
                                      "different from the last healthy "
                                      "state")
                else:
                    if status != "ok":
                        fail("RS203", f"{policy} policy must continue "
                                      f"training past an injected NaN, "
                                      f"raised {type(value).__name__}")
                        continue
                    if victim.iteration != iters:
                        fail("RS203", f"{policy} policy lost iterations: "
                                      f"reached {victim.iteration} of "
                                      f"{iters}")
                    if not victim.guard.events:
                        fail("RS203", f"{policy} policy recorded no "
                                      "GuardEvent for the injected NaN")
                    if not all(
                            np.all(np.isfinite(b.flat_data))
                            for b in victim.net.learnable_params):
                        fail("RS203", f"{policy} policy let NaN reach "
                                      "the parameters")
            finally:
                policy_executor.close()

        # -- damaged / old-format checkpoints must be rejected (RS204) --
        good_path = os.path.join(tmpdir, "good.rckp")
        solver.save_state(good_path)

        def expect_rejection(label: str, path: str, expected) -> None:
            fresh = _build_solver(net, iters, batch, None)
            try:
                fresh.load_state(path)
            except expected:
                return
            except CheckpointError as exc:
                fail("RS204", f"{label} checkpoint raised "
                              f"{type(exc).__name__}, expected "
                              f"{expected.__name__}")
            except Exception as exc:  # noqa: BLE001 - uncoded error
                fail("RS204", f"{label} checkpoint surfaced an uncoded "
                              f"{type(exc).__name__}: {exc}")
            else:
                fail("RS204", f"{label} checkpoint was accepted; it "
                              "must be rejected with a coded error")

        corrupt_path = os.path.join(tmpdir, "corrupt.rckp")
        shutil.copyfile(good_path, corrupt_path)
        corrupt_checkpoint(corrupt_path, seed=0)
        expect_rejection("corrupt", corrupt_path, CheckpointCorrupt)

        truncated_path = os.path.join(tmpdir, "truncated.rckp")
        shutil.copyfile(good_path, truncated_path)
        truncate_checkpoint(truncated_path, fraction=0.5)
        expect_rejection("truncated", truncated_path,
                         (CheckpointCorrupt, CheckpointFormatError))

        legacy_path = os.path.join(tmpdir, "legacy.npz")
        with open(legacy_path, "wb") as handle:
            np.savez(handle, __iteration__=np.array(1))
        expect_rejection("old-format (unversioned .npz)", legacy_path,
                         CheckpointFormatError)
    finally:
        executor.close()
        shutil.rmtree(tmpdir, ignore_errors=True)
    return findings


# ---------------------------------------------------------------------------
# top-level report
# ---------------------------------------------------------------------------
@dataclass
class RescheckReport:
    """Static lint + resume certificates + fault certification."""

    static_findings: List[Finding] = field(default_factory=list)
    certificates: List[ResumeCertificate] = field(default_factory=list)
    fault_findings: List[Finding] = field(default_factory=list)

    @property
    def findings(self) -> List[Finding]:
        out = list(self.static_findings)
        for cert in self.certificates:
            out.extend(cert.findings)
        out.extend(self.fault_findings)
        return out

    @property
    def ok(self) -> bool:
        return not any(f.severity == ERROR for f in self.findings)

    def to_json(self) -> dict:
        return {
            "ok": self.ok,
            "static_findings": [f.to_json() for f in self.static_findings],
            "certificates": [c.to_json() for c in self.certificates],
            "fault_findings": [f.to_json() for f in self.fault_findings],
        }

    def summary_lines(self) -> List[str]:
        def count(findings, severity):
            return sum(1 for f in findings if f.severity == severity)

        lines = [
            f"rescheck static: {count(self.static_findings, ERROR)} "
            "error(s) from the state-write / RNG-capture / cursor lint"
        ]
        for f in self.static_findings:
            lines.append(f"  [{f.rule}/{f.severity}] {f.layer}: {f.message}")
        for cert in self.certificates:
            bits = ",".join(
                f"T={t}:{'=' if ok else '!='}"
                for t, ok in sorted(cert.resume_bitwise.items()))
            lines.append(
                f"resume certificate: net={cert.net} mode={cert.mode} "
                f"save@{cert.resume_at}/{cert.iters} "
                f"vs-uninterrupted[{bits}] -> "
                f"{'OK' if cert.ok else 'VIOLATION'}")
            for f in cert.findings:
                lines.append(
                    f"  [{f.rule}/{f.severity}] {f.layer}: {f.message}")
        if self.fault_findings or self.certificates:
            lines.append(
                f"fault certification: {count(self.fault_findings, ERROR)} "
                "error(s) across chunk-abort / layer-raise / NaN / "
                "damaged-checkpoint injections")
            for f in self.fault_findings:
                lines.append(
                    f"  [{f.rule}/{f.severity}] {f.layer}: {f.message}")
        lines.append(
            "verdict: " + ("RESILIENT" if self.ok else "VIOLATIONS FOUND"))
        return lines


def run_rescheck(
    nets: Iterable[str] = ("lenet", "cifar10", "mlp"),
    modes: Iterable[str] = DEFAULT_MODES,
    threads: Sequence[int] = DEFAULT_THREADS,
    iters: int = 2,
    batch: Optional[int] = 4,
    static_only: bool = False,
    skip_faults: bool = False,
) -> RescheckReport:
    """The full resilience-certification pass."""
    from repro.zoo.build import _SPECS

    assert all(code in CODE_CATALOGUE
               for code in ("RS001", "RS101", "RS201"))
    report = RescheckReport(static_findings=lint_resilience())
    if static_only:
        return report

    nets = list(nets)
    modes = list(modes)
    for name in nets:
        if name not in _SPECS:
            raise SystemExit(
                f"unknown zoo net {name!r}; available: "
                f"{', '.join(sorted(_SPECS))}"
            )
        for mode in modes:
            report.certificates.append(certify_resume(
                name, mode, threads, iters=iters, batch=batch,
            ))
        if not skip_faults:
            report.fault_findings.extend(certify_faults(
                name, threads=max(threads), iters=iters, batch=batch,
            ))
    return report
