"""Deterministic bounded model checking of ThreadTeam programs.

The dynamic half of synccheck.  A program under test is executed with a
:class:`CheckerSync` backend plugged into its :class:`ThreadTeam`: every
synchronization operation (barrier wait, critical lock, ordered turn,
worker join/exit) and every dispatched chunk becomes a *sync point*
submitted to a :class:`Scheduler` that fully serializes the program —
exactly one thread runs between consecutive sync points, every other
thread is parked.  All primitives are virtualized (a barrier is an
arrived-set, a lock is a holder field, the ordered turn is a counter),
so the schedule — the sequence of (thread, operation) grants — is the
*only* source of nondeterminism, and replaying a recorded schedule
reproduces a run bit for bit.

On top of the serializing scheduler, :class:`ModelChecker` explores the
schedule space CHESS-style (Musuvathi & Qadeer's iterative context
bounding): the canonical schedule runs the last-granted thread as long
as it stays ready; at any step where several threads are ready, each
alternative grant is a branch, and branches that *preempt* a still-ready
thread count against a preemption bound (default 2).  Alternatives whose
pending operation is independent of the chosen one are pruned — barrier
releases commute, chunks whose layer footprint certifies sample-disjoint
or privatized-reduction writes commute, only contended lock acquires
(and footprint-uncertified chunk pairs) are treated as dependent.  This
is a heuristic partial-order reduction, not a full DPOR: the
certification suite proves the seeded defect classes are still found.

Verdicts per explored schedule: **deadlock** (every live thread parked,
no operation ready — reported with each thread's pending operation),
**exception** (the program raised), and — across schedules — **digest
divergence** (a program whose invariance tier promises determinism
produced different output bits under two interleavings).  Every verdict
carries the serialized schedule, and :meth:`ModelChecker.replay` runs it
again deterministically.
"""

from __future__ import annotations

import threading
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

#: Schedule trace format version (serialized into --trace output).
TRACE_VERSION = "synccheck-trace/1"

#: Safety limits: a run that exceeds these is infrastructure trouble
#: (reported, never silently ignored).
_MAX_STEPS = 200_000
_QUIESCE_TIMEOUT = 60.0


class CheckerStuck(RuntimeError):
    """The scheduler could not reach quiescence (a thread blocked on
    something outside the virtualized sync surface, or a grant was
    never consumed) — an infrastructure failure, not a program verdict."""


class ScheduleDrift(RuntimeError):
    """A forced replay choice named a thread that was not ready: the
    program's operation sequence changed between record and replay."""


@dataclass(frozen=True)
class Op:
    """One pending synchronization operation."""

    kind: str                 # barrier / acquire / release / turn_wait /
                              # turn_advance / abort / reset / chunk /
                              # join / exit
    resource: str             # barrier point, lock name, "ordered", ...
    parties: int = 0          # barrier: team size
    target: int = -1          # join: the tid being joined
    payload: Tuple = ()       # chunk: (layer, phase, lo, hi)


@dataclass(frozen=True)
class Step:
    """One granted operation in a schedule."""

    tid: int
    kind: str
    resource: str

    def to_json(self) -> list:
        return [self.tid, self.kind, self.resource]


class _Parked:
    """A thread's submission: the op plus its wake-up machinery."""

    __slots__ = ("op", "event", "outcome", "released", "gen")

    def __init__(self, op: Op) -> None:
        self.op = op
        self.event = threading.Event()
        self.outcome: Optional[BaseException] = None
        self.released = False  # barrier ops: tripped, grant must succeed
        self.gen = 0           # barrier ops: generation at arrival


class Scheduler:
    """Cooperative serializing scheduler for one program run.

    Program threads call :meth:`perform` (via :class:`CheckerSync`) and
    block; the controller thread runs :meth:`drive`, granting exactly
    one operation at a time.  ``forced`` replays a schedule prefix (a
    sequence of tids); past the prefix the canonical policy applies and
    alternative grants are recorded as branches for the explorer.
    """

    def __init__(
        self,
        preemption_bound: int = 2,
        forced: Sequence[int] = (),
        independent: Optional[Callable[[Op, Op], bool]] = None,
        collect_branches: bool = True,
    ) -> None:
        self.bound = preemption_bound
        self.forced = list(forced)
        self._independent_chunks = independent
        self.collect_branches = collect_branches

        self._mu = threading.Condition()
        self._parked: Dict[int, _Parked] = {}
        self._idents: Dict[int, int] = {}       # thread ident -> tid
        self._registered: Set[int] = set()
        self._exited: Set[int] = set()
        self._expected: Optional[int] = None    # total program threads
        self._abandoned = False

        # virtual primitive state
        self._lock_holder: Dict[str, Optional[int]] = {}
        self._broken: Set[str] = set()          # broken barrier points
        self._barrier_gen: Dict[str, int] = {}  # generation per point
        self._turn_next = 0
        self._turn_aborted = False

        # schedule state
        self.steps: List[Step] = []
        self.last: Optional[int] = None
        self.preemptions = 0
        #: (step_index, prefix_tids, alternative_tid) discovered branches
        self.branches: List[Tuple[int, Tuple[int, ...], int]] = []
        self.deadlock: Optional[dict] = None

    # ------------------------------------------------------------------
    # program-thread side
    # ------------------------------------------------------------------
    def register(self, tid: int) -> None:
        """Pre-register a thread (the runner) so quiescence waits for
        its first operation."""
        with self._mu:
            self._registered.add(tid)

    def tid_of_current_thread(self) -> int:
        ident = threading.get_ident()
        with self._mu:
            tid = self._idents.get(ident)
        if tid is None:
            raise CheckerStuck(
                "sync operation from a thread that never performed one"
            )
        return tid

    def perform(self, tid: int, op: Op) -> None:
        """Submit ``op`` for thread ``tid``; block until granted.

        Raises the outcome exception the controller attached (broken
        barrier, region abort) in the calling thread, mirroring the
        real primitives.
        """
        parked = _Parked(op)
        with self._mu:
            if self._abandoned:
                raise SystemExit
            self._idents[threading.get_ident()] = tid
            self._registered.add(tid)
            if op.parties:
                self._expected = max(self._expected or 1, op.parties)
            if op.kind == "barrier":
                parked.gen = self._barrier_gen.get(op.resource, 0)
            self._parked[tid] = parked
            self._mu.notify_all()
        parked.event.wait()
        if parked.outcome is not None:
            raise parked.outcome

    # ------------------------------------------------------------------
    # controller side
    # ------------------------------------------------------------------
    def _quiescent_locked(self) -> bool:
        live = self._registered - self._exited
        if not all(tid in self._parked for tid in live):
            return False
        if self._expected is not None and \
                len(self._registered) < self._expected:
            # team threads are still starting up; their arrival is
            # imminent and must be waited for, not raced.
            return False
        return True

    def _ready_locked(self) -> List[int]:
        # Trip barriers first: once every party of the *current
        # generation* has arrived at a point, each of those waits is
        # released (they stay ready while peers drain; a thread looping
        # back to the same barrier arrives in the next generation).
        by_point: Dict[str, List[_Parked]] = {}
        for parked in self._parked.values():
            if parked.op.kind == "barrier" and not parked.released and \
                    parked.gen == self._barrier_gen.get(
                        parked.op.resource, 0):
                by_point.setdefault(parked.op.resource, []).append(parked)
        for point, waiting in by_point.items():
            if len(waiting) >= waiting[0].op.parties:
                for parked in waiting:
                    parked.released = True
                self._barrier_gen[point] = \
                    self._barrier_gen.get(point, 0) + 1

        ready: List[int] = []
        for tid, parked in self._parked.items():
            op = parked.op
            if op.kind == "barrier":
                if parked.released or op.resource in self._broken:
                    ready.append(tid)
            elif op.kind == "acquire":
                if self._lock_holder.get(op.resource) is None:
                    ready.append(tid)
            elif op.kind == "turn_wait":
                if self._turn_next == tid or self._turn_aborted:
                    ready.append(tid)
            elif op.kind == "join":
                if op.target in self._exited:
                    ready.append(tid)
            else:
                # release / turn_advance / abort / reset / chunk / exit
                ready.append(tid)
        return sorted(ready)

    def _apply_locked(self, tid: int, parked: _Parked) -> None:
        op = parked.op
        if op.kind == "barrier":
            if not parked.released and op.resource in self._broken:
                parked.outcome = threading.BrokenBarrierError()
        elif op.kind == "acquire":
            self._lock_holder[op.resource] = tid
        elif op.kind == "release":
            self._lock_holder[op.resource] = None
        elif op.kind == "turn_wait":
            if self._turn_aborted:
                from repro.core.team import _RegionAborted

                parked.outcome = _RegionAborted()
        elif op.kind == "turn_advance":
            self._turn_next += 1
        elif op.kind == "abort":
            self._turn_aborted = True
            self._broken.add("region")
        elif op.kind == "reset":
            self._turn_next = 0
            self._turn_aborted = False
            self._broken.discard("region")
        elif op.kind == "exit":
            self._exited.add(tid)

    def _chunks_independent(self, a: Op, b: Op) -> bool:
        if self._independent_chunks is not None:
            return self._independent_chunks(a, b)
        return False

    #: Grants whose only effect is to *enable* other threads (unlock,
    #: advance the turn, mark exited): by the time such an op is
    #: pending, no conflicting grant can be simultaneously ready, so
    #: exploring both orders is redundant.
    _PURE_KINDS = frozenset(
        {"release", "turn_advance", "exit", "join", "reset"}
    )

    def _op_independent(self, a: Op, b: Op) -> bool:
        """May the order of these two pending grants be swapped without
        reaching a distinct state?  (Heuristic reduction, see module
        docstring; the certification suite proves the seeded defect
        classes survive it.)

        * chunk/chunk — per the layer-footprint callback (conservative
          default: dependent).
        * chunk/sync — a chunk grant only computes certified data and
          parks again; sync state is untouched, so orders commute.
        * barrier/barrier — permuting resumptions from a tripped
          barrier; any real conflict surfaces later as a pending pair.
        * pure enabling grants (release/advance/exit/join/reset) — see
          :data:`_PURE_KINDS`.
        * everything else (acquire, turn_wait, abort, barrier-vs-other)
          is dependent: granting it runs arbitrary region code that can
          contend with the chosen thread, so both orders are explored.
        """
        if a.kind == "chunk" or b.kind == "chunk":
            if a.kind == b.kind:
                return self._chunks_independent(a, b)
            return True
        if a.kind in self._PURE_KINDS or b.kind in self._PURE_KINDS:
            return True
        if a.kind == "barrier" and b.kind == "barrier":
            return True
        return False

    def _choose_locked(self, ready: List[int]) -> int:
        step = len(self.steps)
        if step < len(self.forced):
            want = self.forced[step]
            if want not in ready:
                raise ScheduleDrift(
                    f"replay step {step}: forced tid {want} not ready "
                    f"(ready={ready}, pending="
                    f"{ {t: p.op.kind for t, p in self._parked.items()} })"
                )
            chosen = want
        else:
            chosen = self.last if self.last in ready else ready[0]
            if self.collect_branches and len(ready) > 1:
                prefix = tuple(s.tid for s in self.steps)
                chosen_op = self._parked[chosen].op
                for alt in ready:
                    if alt == chosen:
                        continue
                    cost = self.preemptions + (
                        1 if self.last in ready and alt != self.last else 0
                    )
                    if cost > self.bound:
                        continue
                    if self._op_independent(
                            self._parked[alt].op, chosen_op):
                        continue
                    self.branches.append((step, prefix, alt))
        if self.last is not None and self.last in ready \
                and chosen != self.last:
            self.preemptions += 1
        return chosen

    def _abandon_locked(self) -> None:
        """Wake every parked thread with SystemExit so the process does
        not accumulate parked daemon threads after a deadlock verdict."""
        self._abandoned = True
        for parked in self._parked.values():
            parked.outcome = SystemExit()
            parked.event.set()
        self._parked.clear()

    def drive(self) -> str:
        """Run the schedule to completion.  Returns ``"complete"`` or
        ``"deadlock"``; raises :class:`CheckerStuck` / drift errors."""
        while True:
            with self._mu:
                while not self._quiescent_locked():
                    if not self._mu.wait(timeout=_QUIESCE_TIMEOUT):
                        self._abandon_locked()
                        raise CheckerStuck(
                            "no quiescence within "
                            f"{_QUIESCE_TIMEOUT}s (pending="
                            f"{ {t: p.op.kind for t, p in self._parked.items()} }, "
                            f"registered={sorted(self._registered)}, "
                            f"exited={sorted(self._exited)})"
                        )
                if not self._registered - self._exited:
                    return "complete"
                ready = self._ready_locked()
                if not ready:
                    self.deadlock = {
                        "pending": {
                            str(tid): {
                                "kind": parked.op.kind,
                                "resource": parked.op.resource,
                            }
                            for tid, parked in sorted(self._parked.items())
                        },
                        "turn_next": self._turn_next,
                        "locks": {
                            k: v for k, v in self._lock_holder.items()
                            if v is not None
                        },
                    }
                    self._abandon_locked()
                    return "deadlock"
                if len(self.steps) >= _MAX_STEPS:
                    self._abandon_locked()
                    raise CheckerStuck(
                        f"schedule exceeded {_MAX_STEPS} steps"
                    )
                try:
                    chosen = self._choose_locked(ready)
                except ScheduleDrift:
                    self._abandon_locked()
                    raise
                parked = self._parked.pop(chosen)
                self._apply_locked(chosen, parked)
                self.steps.append(
                    Step(chosen, parked.op.kind, parked.op.resource)
                )
                parked.event.set()


# ---------------------------------------------------------------------------
# the TeamSync backend driving programs into the scheduler
# ---------------------------------------------------------------------------
class CheckerSync:
    """TeamSync backend that virtualizes every primitive into scheduler
    operations.  Deliberately duck-typed (not a TeamSync subclass) so
    importing this module never imports numpy-heavy runtime modules."""

    observes_chunks = True

    def __init__(self, scheduler: Scheduler) -> None:
        self.sched = scheduler

    def barrier_wait(self, team, tid: int, point: str) -> None:
        team._note_sync(tid, f"{point}-barrier")
        self.sched.perform(
            tid, Op("barrier", point, parties=team.num_threads)
        )

    def critical(self, team, tid: int, fn) -> None:
        team._note_sync(tid, "critical")
        self.sched.perform(tid, Op("acquire", "critical"))
        try:
            fn()
        finally:
            self.sched.perform(tid, Op("release", "critical"))

    def ordered(self, team, tid: int, fn) -> None:
        team._note_sync(tid, "ordered")
        self.sched.perform(tid, Op("turn_wait", "ordered"))
        try:
            fn()
        finally:
            self.sched.perform(tid, Op("turn_advance", "ordered"))

    def _tid_or_master(self) -> int:
        # A one-thread team's parallel() short-circuits past every
        # barrier, so the master may reach reset/abort before its first
        # perform registered an ident; it is tid 0 by construction.
        with self.sched._mu:
            return self.sched._idents.get(threading.get_ident(), 0)

    def abort(self, team) -> None:
        self.sched.perform(self._tid_or_master(), Op("abort", "region"))

    def reset(self, team) -> None:
        self.sched.perform(self._tid_or_master(), Op("reset", "region"))

    def chunk_point(self, team, tid: int, layer: str, phase: str,
                    lo: int, hi: int) -> None:
        self.sched.perform(tid, Op(
            "chunk", f"{layer}/{phase}[{lo}:{hi}]",
            payload=(layer, phase, lo, hi),
        ))

    def join_worker(self, team, tid: int, worker) -> None:
        caller = self.sched.tid_of_current_thread()
        self.sched.perform(
            caller, Op("join", f"worker-{tid}", target=tid)
        )
        worker.join(timeout=10.0)

    def thread_exit(self, team, tid: int) -> None:
        try:
            self.sched.perform(tid, Op("exit", f"thread-{tid}"))
        except SystemExit:
            pass  # abandoned run: die quietly


# ---------------------------------------------------------------------------
# exploration
# ---------------------------------------------------------------------------
@dataclass
class RunRecord:
    """One explored schedule."""

    status: str                      # complete / deadlock / error
    schedule: List[Step]
    preemptions: int
    forced_prefix: Tuple[int, ...]
    digest: Optional[int] = None
    error: Optional[str] = None      # formatted traceback for errors
    error_type: Optional[str] = None
    deadlock: Optional[dict] = None

    def trace_json(self, config: Optional[dict] = None) -> dict:
        return {
            "version": TRACE_VERSION,
            "config": config or {},
            "preemptions": self.preemptions,
            "status": self.status,
            "schedule": [s.to_json() for s in self.schedule],
        }


@dataclass
class ExplorationResult:
    """Everything explore() learned about one program configuration."""

    runs: List[RunRecord] = field(default_factory=list)
    explored: int = 0
    pruned_branches: int = 0
    truncated: bool = False
    bound: int = 2

    @property
    def deadlocks(self) -> List[RunRecord]:
        return [r for r in self.runs if r.status == "deadlock"]

    @property
    def errors(self) -> List[RunRecord]:
        return [r for r in self.runs if r.status == "error"]

    @property
    def digests(self) -> Set[int]:
        return {r.digest for r in self.runs
                if r.status == "complete" and r.digest is not None}


class ModelChecker:
    """CHESS-style iterative-context-bounded exploration of one program.

    ``program`` is a callable taking the :class:`CheckerSync` backend;
    it must build its ThreadTeam with ``sync=<backend>``, run the
    workload, tear the team down, and return an integer digest of its
    observable output (or None when the program has no numeric output).
    A fresh program instance runs per schedule — the callable must be
    self-contained and deterministic given the schedule.
    """

    def __init__(
        self,
        program: Callable[[CheckerSync], Optional[int]],
        preemptions: int = 2,
        max_runs: int = 256,
        independent: Optional[Callable[[Op, Op], bool]] = None,
    ) -> None:
        self.program = program
        self.preemptions = preemptions
        self.max_runs = max_runs
        self.independent = independent

    # -- single run ----------------------------------------------------
    def _run_once(self, forced: Tuple[int, ...],
                  collect: bool = True) -> Tuple[RunRecord, Scheduler]:
        sched = Scheduler(
            preemption_bound=self.preemptions,
            forced=forced,
            independent=self.independent,
            collect_branches=collect,
        )
        sync = CheckerSync(sched)
        outcome: dict = {}

        def runner() -> None:
            try:
                outcome["digest"] = self.program(sync)
            except SystemExit:
                pass  # abandoned schedule
            except BaseException as exc:  # noqa: BLE001 - recorded verdict
                outcome["error"] = exc
                outcome["tb"] = traceback.format_exc()
            finally:
                try:
                    sched.perform(0, Op("exit", "thread-0"))
                except BaseException:
                    pass

        sched.register(0)
        thread = threading.Thread(
            target=runner, name="synccheck-runner", daemon=True
        )
        thread.start()
        status = sched.drive()
        if status == "complete":
            thread.join(timeout=10.0)
        if "error" in outcome:
            record = RunRecord(
                status="error", schedule=sched.steps,
                preemptions=sched.preemptions, forced_prefix=forced,
                error=outcome["tb"],
                error_type=type(outcome["error"]).__name__,
            )
        elif status == "deadlock":
            record = RunRecord(
                status="deadlock", schedule=sched.steps,
                preemptions=sched.preemptions, forced_prefix=forced,
                deadlock=sched.deadlock,
            )
        else:
            record = RunRecord(
                status="complete", schedule=sched.steps,
                preemptions=sched.preemptions, forced_prefix=forced,
                digest=outcome.get("digest"),
            )
        return record, sched

    # -- exploration ---------------------------------------------------
    def explore(self) -> ExplorationResult:
        result = ExplorationResult(bound=self.preemptions)
        worklist: List[Tuple[int, ...]] = [()]
        seen: Set[Tuple[int, ...]] = {()}
        while worklist:
            if result.explored >= self.max_runs:
                result.truncated = True
                break
            forced = worklist.pop()
            record, sched = self._run_once(forced)
            result.explored += 1
            result.runs.append(record)
            for step, prefix, alt in sched.branches:
                if step < len(forced):
                    continue  # enumerated by an ancestor run already
                candidate = prefix[:step] + (alt,)
                if candidate not in seen:
                    seen.add(candidate)
                    worklist.append(candidate)
        return result

    # -- deterministic replay ------------------------------------------
    def replay(self, schedule: Sequence[Step]) -> Tuple[bool, RunRecord]:
        """Re-execute a recorded schedule; verify the op sequence
        matches step for step.  Returns (faithful, record)."""
        forced = tuple(step.tid for step in schedule)
        record, _sched = self._run_once(forced, collect=False)
        faithful = len(record.schedule) >= len(schedule) and all(
            got.tid == want.tid and got.kind == want.kind
            and got.resource == want.resource
            for got, want in zip(record.schedule, schedule)
        )
        return faithful, record


def schedule_from_json(steps: Sequence[Sequence]) -> List[Step]:
    """Rebuild a schedule from its ``trace_json`` serialized form."""
    return [Step(int(t), str(k), str(r)) for t, k, r in steps]
