"""Report model for the parallel-safety analyzer.

Both passes (static footprint classification and dynamic shadow-memory
race detection) emit their results through the dataclasses here, so the
CLI can render one machine-readable JSON document and a human summary
from the same objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.framework.layer import FootprintDecl

#: Finding severities.  Only ``ERROR`` findings fail the ``--gate``.
ERROR = "error"
WARNING = "warning"
INFO = "info"


@dataclass(frozen=True)
class Finding:
    """One diagnostic from the static pass (lint rule or classifier)."""

    rule: str        # e.g. "FP001"
    severity: str    # ERROR or WARNING
    layer: str       # layer class name (or "<runtime>" for RT rules)
    message: str
    location: str = ""   # "path:line" when known

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "layer": self.layer,
            "message": self.message,
            "location": self.location,
        }


@dataclass
class LayerReport:
    """Static classification of one layer class."""

    cls_name: str
    declared: Optional[FootprintDecl]
    inferred_forward: str
    inferred_backward: str
    inferred_reduction_params: Tuple[int, ...] = ()
    findings: List[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(f.severity == ERROR for f in self.findings)

    def to_json(self) -> dict:
        return {
            "class": self.cls_name,
            "declared": (
                None if self.declared is None else {
                    "forward": self.declared.forward,
                    "backward": self.declared.backward,
                    "reduction_params": list(self.declared.reduction_params),
                    "scratch": list(self.declared.scratch),
                }
            ),
            "inferred_forward": self.inferred_forward,
            "inferred_backward": self.inferred_backward,
            "inferred_reduction_params": list(self.inferred_reduction_params),
            "ok": self.ok,
            "findings": [f.to_json() for f in self.findings],
        }


@dataclass
class StaticReport:
    """All layer classifications plus runtime-invariant lint findings."""

    layers: Dict[str, LayerReport] = field(default_factory=dict)
    runtime_findings: List[Finding] = field(default_factory=list)

    @property
    def findings(self) -> List[Finding]:
        out = list(self.runtime_findings)
        for rep in self.layers.values():
            out.extend(rep.findings)
        return out

    @property
    def ok(self) -> bool:
        return not any(f.severity == ERROR for f in self.findings)

    def to_json(self) -> dict:
        return {
            "ok": self.ok,
            "layers": {k: v.to_json() for k, v in sorted(self.layers.items())},
            "runtime_findings": [f.to_json() for f in self.runtime_findings],
        }


@dataclass(frozen=True)
class Race:
    """One detected cross-thread overlap from the dynamic pass."""

    layer: str       # layer *instance* name in the net
    phase: str       # "forward" or "backward"
    array: str       # e.g. "blob:conv1.data", "attr:loss._prob"
    threads: Tuple[int, int]
    overlap: int     # number of overlapping scalar positions
    first_offsets: Tuple[int, ...]  # up to 8 sample offsets

    def to_json(self) -> dict:
        return {
            "layer": self.layer,
            "phase": self.phase,
            "array": self.array,
            "threads": list(self.threads),
            "overlap": self.overlap,
            "first_offsets": list(self.first_offsets),
        }


@dataclass
class DynamicReport:
    """Shadow-memory race detection over one net at one thread count."""

    net: str
    num_threads: int
    races: List[Race] = field(default_factory=list)
    layers_checked: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.races

    def to_json(self) -> dict:
        return {
            "net": self.net,
            "num_threads": self.num_threads,
            "ok": self.ok,
            "layers_checked": self.layers_checked,
            "races": [r.to_json() for r in self.races],
        }


@dataclass
class AnalysisReport:
    """Top-level document: one static pass + N dynamic runs."""

    static: StaticReport
    dynamic: List[DynamicReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.static.ok and all(d.ok for d in self.dynamic)

    def to_json(self) -> dict:
        return {
            "ok": self.ok,
            "static": self.static.to_json(),
            "dynamic": [d.to_json() for d in self.dynamic],
        }

    def summary_lines(self) -> List[str]:
        lines: List[str] = []
        lines.append(
            f"static: {len(self.static.layers)} layer classes analyzed, "
            f"{sum(1 for f in self.static.findings if f.severity == ERROR)} "
            f"error(s), "
            f"{sum(1 for f in self.static.findings if f.severity == WARNING)} "
            f"warning(s)"
        )
        for finding in self.static.findings:
            lines.append(
                f"  [{finding.rule}/{finding.severity}] {finding.layer}: "
                f"{finding.message}"
            )
        for dyn in self.dynamic:
            status = "clean" if dyn.ok else f"{len(dyn.races)} race(s)"
            lines.append(
                f"dynamic: net={dyn.net} threads={dyn.num_threads} -> {status}"
            )
            for race in dyn.races:
                lines.append(
                    f"  RACE {race.layer}/{race.phase} on {race.array}: "
                    f"threads {race.threads[0]} and {race.threads[1]} both "
                    f"wrote {race.overlap} position(s), e.g. "
                    f"{list(race.first_offsets)}"
                )
        lines.append("verdict: " + ("OK" if self.ok else "VIOLATIONS FOUND"))
        return lines
