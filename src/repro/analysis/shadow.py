"""Shadow-memory machinery for the dynamic race detector.

The detector replays a layer's chunk schedule once *per simulated
thread* against an identical memory image and diffs the tracked arrays
to recover each thread's write set.  Two replays per thread — one from
the pristine baseline and one from a perturbed baseline — make the
write set robust against writes that happen to store the value already
present (``y[:] = 0`` over zeros would otherwise be invisible).

:class:`ShadowTracker` plugs into the blob write hooks
(:func:`repro.framework.blob.set_write_tracker`) and records which
blobs each simulated thread touched through the Blob accessors; races
found by the snapshot diff carry that attribution.  The hooks cost
nothing when no tracker is installed (a single ``is None`` test), so
instrumentation is strictly opt-in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.framework.blob import Blob, set_write_tracker

#: Additive perturbation applied to float arrays for the second replay.
#: Small enough to keep label-like floats intact under ``astype(int)``.
PERTURB_EPS = 1e-4


class ShadowTracker:
    """Records blob accesses per simulated thread via the Blob hooks."""

    def __init__(self) -> None:
        self.thread_id: Optional[int] = None
        # thread_id -> set of (id(blob), "data"|"diff")
        self.accesses: Dict[int, Set[Tuple[int, str]]] = {}

    def begin(self, thread_id: int) -> None:
        self.thread_id = thread_id
        self.accesses.setdefault(thread_id, set())

    def end(self) -> None:
        self.thread_id = None

    def on_host_access(self, blob: Blob, kind: str) -> None:
        if self.thread_id is not None:
            self.accesses[self.thread_id].add((id(blob), kind))

    def touched(self, thread_id: int, blob_id: int, kind: str) -> bool:
        return (blob_id, kind) in self.accesses.get(thread_id, set())


class _InstalledTracker:
    """Context manager installing a ShadowTracker in the Blob hooks."""

    def __init__(self, tracker: ShadowTracker) -> None:
        self.tracker = tracker
        self._prev = None

    def __enter__(self) -> ShadowTracker:
        self._prev = set_write_tracker(self.tracker)
        return self.tracker

    def __exit__(self, *exc) -> None:
        set_write_tracker(self._prev)


@dataclass
class TrackedArray:
    """One shared array under shadow observation."""

    name: str            # e.g. "blob:conv1.data", "attr:loss._prob"
    array: np.ndarray
    blob_id: Optional[int] = None   # owning Blob, for hook attribution
    kind: str = ""                  # "data"/"diff" when blob-owned
    baseline: np.ndarray = field(init=False)
    perturbed: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.baseline = self.array.copy()
        if np.issubdtype(self.array.dtype, np.floating):
            self.perturbed = self.baseline + PERTURB_EPS
        else:
            # int/bool content (labels, argmax indices) must survive
            # exactly — perturbing them would corrupt indexing.
            self.perturbed = self.baseline.copy()

    def restore(self, image: np.ndarray) -> None:
        np.copyto(self.array, image)

    def diff_mask(self, image: np.ndarray) -> np.ndarray:
        flat_now = self.array.reshape(-1)
        flat_img = image.reshape(-1)
        if np.issubdtype(self.array.dtype, np.floating):
            # NaN-safe exact comparison: NaN != NaN would flag untouched
            # NaN-initialized scratch as written.
            now_nan = np.isnan(flat_now)
            img_nan = np.isnan(flat_img)
            mask = (flat_now != flat_img) & ~(now_nan & img_nan)
            return mask
        return flat_now != flat_img


def collect_tracked_arrays(
    net, layer, bottom: Sequence[Blob], top: Sequence[Blob]
) -> List[TrackedArray]:
    """Every shared array the layer's chunks could legally or illegally
    write: all net blob data/diff arrays, the layer's parameter blob
    arrays, and any ndarray attribute hanging off the layer instance.

    Deduplicated by array identity — in-place layers and Split tops
    share backing arrays, and one mask per physical buffer is what the
    race check needs.
    """
    tracked: List[TrackedArray] = []
    seen: Set[int] = set()
    blob_names: Dict[int, str] = {}
    for name, blob in getattr(net, "blob_map", {}).items():
        blob_names[id(blob)] = name

    def add(name: str, arr: Optional[np.ndarray],
            blob_id: Optional[int] = None, kind: str = "") -> None:
        if arr is None or not isinstance(arr, np.ndarray) or arr.size == 0:
            return
        base = arr if arr.base is None else arr.base
        if id(base) in seen:
            return
        seen.add(id(base))
        tracked.append(TrackedArray(name, arr, blob_id, kind))

    def add_blob(label: str, blob: Blob) -> None:
        name = blob_names.get(id(blob), label)
        add(f"blob:{name}.data", getattr(blob, "_flat_data", None),
            id(blob), "data")
        add(f"blob:{name}.diff", getattr(blob, "_flat_diff", None),
            id(blob), "diff")

    for blob in list(bottom) + list(top):
        add_blob("io", blob)
    for i, blob in enumerate(getattr(layer, "blobs", ())):
        add(f"param:{layer.name}.blobs[{i}].data",
            getattr(blob, "_flat_data", None), id(blob), "data")
        add(f"param:{layer.name}.blobs[{i}].diff",
            getattr(blob, "_flat_diff", None), id(blob), "diff")
    # remaining net blobs: a correct layer never touches them, which is
    # exactly why they are watched
    for name, blob in getattr(net, "blob_map", {}).items():
        add_blob(name, blob)
    for attr, value in vars(layer).items():
        if isinstance(value, np.ndarray):
            add(f"attr:{layer.name}.{attr}", value)
    return tracked


def restore_all(tracked: Sequence[TrackedArray], perturbed: bool) -> None:
    for t in tracked:
        t.restore(t.perturbed if perturbed else t.baseline)


def write_masks(tracked: Sequence[TrackedArray],
                perturbed: bool) -> List[np.ndarray]:
    return [t.diff_mask(t.perturbed if perturbed else t.baseline)
            for t in tracked]


def owner_runs(owners: np.ndarray) -> List[Tuple[int, int, int]]:
    """Collapse an ownership vector into ``(lo, hi, thread)`` runs."""
    runs: List[Tuple[int, int, int]] = []
    lo = 0
    for i in range(1, len(owners) + 1):
        if i == len(owners) or owners[i] != owners[lo]:
            runs.append((lo, i, int(owners[lo])))
            lo = i
    return runs


class RebindWatch:
    """Detects layer attributes *rebound* (``self.x = new_array``) during
    a replay.

    Rebinding replaces the array object, so a snapshot diff of the old
    array sees nothing — yet two threads doing it race on the attribute
    slot itself (last writer wins).  The watch snapshots the identity of
    every ndarray attribute and reports names whose binding changed.
    """

    def __init__(self, layer) -> None:
        self.layer = layer
        self.before = {
            name: value for name, value in vars(layer).items()
            if isinstance(value, np.ndarray)
        }

    def rebound(self) -> Set[str]:
        out: Set[str] = set()
        for name, value in vars(self.layer).items():
            if not isinstance(value, np.ndarray):
                continue
            if name not in self.before or self.before[name] is not value:
                out.add(name)
        return out

    def restore(self) -> None:
        for name, value in list(vars(self.layer).items()):
            if not isinstance(value, np.ndarray):
                continue
            if name not in self.before:
                delattr(self.layer, name)
            elif self.before[name] is not value:
                setattr(self.layer, name, self.before[name])


def thread_write_sets(
    tracked: Sequence[TrackedArray],
    num_threads: int,
    run_chunks,          # callable(thread_id) -> None
    tracker: Optional[ShadowTracker] = None,
    layer=None,
) -> Tuple[List[List[np.ndarray]], List[Set[str]]]:
    """Replay each simulated thread's chunks twice and union the diffs.

    Returns ``(masks, rebinds)``: ``masks[thread][tracked_index]`` is a
    flat boolean write mask per tracked array per thread, and
    ``rebinds[thread]`` names the layer attributes that thread rebound.
    Leaves the tracked arrays (and attribute bindings) restored to their
    baseline image.
    """
    masks: List[List[np.ndarray]] = []
    rebinds: List[Set[str]] = []
    watch = RebindWatch(layer) if layer is not None else None
    for tid in range(num_threads):
        union: Optional[List[np.ndarray]] = None
        thread_rebinds: Set[str] = set()
        for perturbed in (False, True):
            restore_all(tracked, perturbed)
            if tracker is not None:
                tracker.begin(tid)
                try:
                    with _InstalledTracker(tracker):
                        run_chunks(tid)
                finally:
                    tracker.end()
            else:
                run_chunks(tid)
            step = write_masks(tracked, perturbed)
            if union is None:
                union = step
            else:
                union = [u | s for u, s in zip(union, step)]
            if watch is not None:
                thread_rebinds |= watch.rebound()
                watch.restore()
        masks.append(union or [])
        rebinds.append(thread_rebinds)
    restore_all(tracked, perturbed=False)
    return masks, rebinds
