"""Net-graph static checker: shape inference, linting, schedule planning.

``netcheck`` answers, from a :class:`~repro.framework.net_spec.NetSpec`
alone — no layer instantiation, no blob allocation, no data source
rendering — the three questions a developer otherwise needs a full net
build (or a crashed training run) to answer:

1. **Shapes** — what shape and dtype does every blob have?  Propagated
   through the per-layer inference rules registered alongside the layer
   zoo (:mod:`repro.framework.shape_inference`), over the same
   phase-filtered, split-inserted graph the real
   :class:`~repro.framework.net.Net` builds, so names and shapes match
   ``Net.blob_map`` exactly.

2. **Lint** — is the graph well formed?  Findings carry stable codes:

   ========  ========  ====================================================
   code      severity  meaning
   ========  ========  ====================================================
   NG001     error     bottom shapes incompatible with the layer's params
   NG002     error     in-place top violates the chunk-write protocol
   NG003     warning   dead blob: produced but never consumed
   NG004     error     duplicate producers: a later layer silently
                       shadows an earlier layer's top of the same name
   NG005     warning   conv/pool pad-stride geometry drops or skips pixels
   NG006     error     net input declared without an input shape
   NG007     error     unknown layer type (no registered inference rule)
   NG008     error     dangling bottom: consumed but never produced
   NG009     error     duplicate layer name within one phase
   ========  ========  ====================================================

3. **Plan** — how would the coarse-grain runtime run it?  Per-layer
   coalesced iteration-space sizes, the per-thread chunk split and
   imbalance under static scheduling at each requested thread count
   (computed with the runtime's own
   :class:`~repro.core.scheduling.StaticSchedule`, so the prediction *is*
   the schedule), FLOP counts from
   :func:`repro.simulator.cost_model.spec_costs`, and static memory
   accounting (parameters, resident activations, and a liveness-based
   peak for inference-style execution).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import ERROR, WARNING, Finding
from repro.core.scheduling import StaticSchedule
from repro.framework.net_spec import LayerSpec, NetSpec
from repro.framework.shape_inference import (
    NOTE_DROPPED_PIXELS,
    NOTE_SKIPPED_PIXELS,
    shape_rule_for,
)
from repro.framework.symbolic import SymbolicNet, infer_net
from repro.simulator.cost_model import BYTES, LayerCost, spec_costs

#: Lint codes (see module docstring for the full table).
NG_SHAPE_MISMATCH = "NG001"
NG_ILLEGAL_INPLACE = "NG002"
NG_DEAD_BLOB = "NG003"
NG_DUPLICATE_PRODUCER = "NG004"
NG_LOSSY_GEOMETRY = "NG005"
NG_INPUT_WITHOUT_SHAPE = "NG006"
NG_UNKNOWN_TYPE = "NG007"
NG_DANGLING_BOTTOM = "NG008"
NG_DUPLICATE_NAME = "NG009"


# ---------------------------------------------------------------------------
# report model
# ---------------------------------------------------------------------------
@dataclass
class LayerWork:
    """Static work summary for one layer of the split-inserted graph."""

    name: str
    type: str
    space: int                 # coalesced forward iteration count
    sequential: bool
    flops_forward: float
    flops_backward: float
    param_count: int
    top_shapes: List[Tuple[int, ...]] = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "type": self.type,
            "space": self.space,
            "sequential": self.sequential,
            "flops_forward": self.flops_forward,
            "flops_backward": self.flops_backward,
            "param_count": self.param_count,
            "top_shapes": [list(s) for s in self.top_shapes],
        }


@dataclass
class LayerSchedulePlan:
    """Predicted static-schedule split of one layer at one thread count."""

    name: str
    type: str
    space: int
    sequential: bool
    per_thread: List[int]      # iterations owned by each thread
    imbalance: float           # max_per_thread / (space / T); 1.0 = even

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "type": self.type,
            "space": self.space,
            "sequential": self.sequential,
            "per_thread": list(self.per_thread),
            "imbalance": self.imbalance,
        }


@dataclass
class SchedulePlan:
    """All layers' chunk splits at one thread count."""

    num_threads: int
    layers: List[LayerSchedulePlan] = field(default_factory=list)

    @property
    def max_imbalance(self) -> float:
        parallel = [l.imbalance for l in self.layers if not l.sequential]
        return max(parallel, default=1.0)

    def to_json(self) -> dict:
        return {
            "num_threads": self.num_threads,
            "max_imbalance": self.max_imbalance,
            "layers": [l.to_json() for l in self.layers],
        }


@dataclass
class MemoryPlan:
    """Static memory accounting (bytes, single precision)."""

    param_bytes: int = 0
    #: All activation blobs resident at once — the runtime's behaviour
    #: (Net keeps every blob allocated for the backward pass).
    activation_bytes: int = 0
    #: Liveness-based peak: a blob is freed after its last forward
    #: consumer — the floor an inference-only executor could reach.
    peak_activation_bytes: int = 0

    def to_json(self) -> dict:
        return {
            "param_bytes": self.param_bytes,
            "activation_bytes": self.activation_bytes,
            "peak_activation_bytes": self.peak_activation_bytes,
        }


@dataclass
class NetcheckReport:
    """Full netcheck result for one (net, phase)."""

    net: str
    phase: str
    batch: Optional[int] = None
    findings: List[Finding] = field(default_factory=list)
    #: blob name -> shape over the split-inserted graph (matches the
    #: instantiated net's ``blob_map`` when inference fully succeeds).
    shapes: Dict[str, Tuple[int, ...]] = field(default_factory=dict)
    layers: List[LayerWork] = field(default_factory=list)
    plans: List[SchedulePlan] = field(default_factory=list)
    memory: MemoryPlan = field(default_factory=MemoryPlan)

    @property
    def ok(self) -> bool:
        return not any(f.severity == ERROR for f in self.findings)

    @property
    def total_flops_forward(self) -> float:
        return sum(l.flops_forward for l in self.layers)

    @property
    def total_flops_backward(self) -> float:
        return sum(l.flops_backward for l in self.layers)

    def to_json(self) -> dict:
        return {
            "net": self.net,
            "phase": self.phase,
            "batch": self.batch,
            "ok": self.ok,
            "findings": [f.to_json() for f in self.findings],
            "shapes": {k: list(v) for k, v in sorted(self.shapes.items())},
            "layers": [l.to_json() for l in self.layers],
            "total_flops_forward": self.total_flops_forward,
            "total_flops_backward": self.total_flops_backward,
            "plans": [p.to_json() for p in self.plans],
            "memory": self.memory.to_json(),
        }

    def summary_lines(self) -> List[str]:
        lines: List[str] = []
        errors = sum(1 for f in self.findings if f.severity == ERROR)
        warnings = sum(1 for f in self.findings if f.severity == WARNING)
        lines.append(
            f"netcheck: net={self.net or '<unnamed>'} phase={self.phase}"
            + (f" batch={self.batch}" if self.batch is not None else "")
            + f" -> {errors} error(s), {warnings} warning(s)"
        )
        for finding in self.findings:
            lines.append(
                f"  [{finding.rule}/{finding.severity}] {finding.layer}: "
                f"{finding.message}"
            )
        if self.layers:
            lines.append(
                f"  {len(self.layers)} layers, "
                f"fwd {self.total_flops_forward:.3e} flops, "
                f"bwd {self.total_flops_backward:.3e} flops"
            )
            lines.append(
                f"  memory: params {self.memory.param_bytes} B, "
                f"activations {self.memory.activation_bytes} B "
                f"(peak {self.memory.peak_activation_bytes} B)"
            )
        for plan in self.plans:
            lines.append(
                f"  threads={plan.num_threads}: "
                f"max imbalance {plan.max_imbalance:.3f}"
            )
        lines.append("  verdict: " + ("OK" if self.ok else "ERRORS FOUND"))
        return lines


# ---------------------------------------------------------------------------
# lint passes
# ---------------------------------------------------------------------------
def _lint_structure(spec: NetSpec, phase: str) -> List[Finding]:
    """Graph-structure lint over the raw (pre-split) phase graph."""
    findings: List[Finding] = []
    phase_specs = spec.layers_for_phase(phase)

    # NG006: inputs beyond the declared shapes.
    for input_name in spec.inputs[len(spec.input_shapes):]:
        findings.append(Finding(
            rule=NG_INPUT_WITHOUT_SHAPE, severity=ERROR, layer="<net>",
            message=(
                f"input {input_name!r} is declared without an input_shape; "
                "its consumers cannot be shaped"
            ),
        ))

    # NG009: duplicate layer names within the phase.
    seen_names: Dict[str, str] = {}
    for layer_spec in phase_specs:
        if layer_spec.name in seen_names:
            findings.append(Finding(
                rule=NG_DUPLICATE_NAME, severity=ERROR,
                layer=layer_spec.name,
                message=f"duplicate layer name in phase {phase}",
            ))
        seen_names[layer_spec.name] = layer_spec.type

    # NG007: unknown layer types.
    for layer_spec in phase_specs:
        if shape_rule_for(layer_spec.type) is None:
            findings.append(Finding(
                rule=NG_UNKNOWN_TYPE, severity=ERROR, layer=layer_spec.name,
                message=(
                    f"unknown layer type {layer_spec.type!r}: no registered "
                    "inference rule"
                ),
            ))

    # NG008: dangling bottoms; NG004: silent shadowing producers;
    # NG002: in-place against a rule that forbids it.
    available = set(spec.inputs[: len(spec.input_shapes)])
    available.update(spec.inputs[len(spec.input_shapes):])  # named anyway
    producer: Dict[str, str] = {}
    for layer_spec in phase_specs:
        for bottom in layer_spec.bottoms:
            if bottom not in available:
                findings.append(Finding(
                    rule=NG_DANGLING_BOTTOM, severity=ERROR,
                    layer=layer_spec.name,
                    message=(
                        f"consumes blob {bottom!r} which no earlier layer "
                        "produces"
                    ),
                ))
        inplace = [t for t in layer_spec.tops if t in layer_spec.bottoms]
        rule = shape_rule_for(layer_spec.type)
        if inplace and rule is not None and not rule.inplace_ok:
            findings.append(Finding(
                rule=NG_ILLEGAL_INPLACE, severity=ERROR,
                layer=layer_spec.name,
                message=(
                    f"writes top {inplace[0]!r} in place over its own "
                    f"bottom, but {layer_spec.type} does not satisfy the "
                    "chunk-write protocol for in-place operation (an "
                    "iteration may read elements another thread's chunk "
                    "already overwrote)"
                ),
            ))
        for top in layer_spec.tops:
            if top in producer and top not in layer_spec.bottoms:
                findings.append(Finding(
                    rule=NG_DUPLICATE_PRODUCER, severity=ERROR,
                    layer=layer_spec.name,
                    message=(
                        f"re-produces blob {top!r} (first produced by "
                        f"{producer[top]!r}) without consuming it; the "
                        "earlier output is silently shadowed"
                    ),
                ))
            producer[top] = layer_spec.name
            available.add(top)

    # NG003: dead blobs (produced, never consumed, not terminal).
    findings.extend(_lint_dead_blobs(spec, phase_specs))
    return findings


def _lint_dead_blobs(
    spec: NetSpec, phase_specs: List[LayerSpec]
) -> List[Finding]:
    findings: List[Finding] = []
    for i, layer_spec in enumerate(phase_specs):
        rule = shape_rule_for(layer_spec.type)
        if rule is not None and rule.terminal_ok:
            continue
        for top in layer_spec.tops:
            consumed = any(
                top in later.bottoms for later in phase_specs[i + 1:]
            )
            if not consumed:
                findings.append(Finding(
                    rule=NG_DEAD_BLOB, severity=WARNING,
                    layer=layer_spec.name,
                    message=(
                        f"top {top!r} is never consumed by a downstream "
                        "layer (dead blob; only loss/accuracy outputs are "
                        "legitimately terminal)"
                    ),
                ))
    return findings


def _lint_inference(sym: SymbolicNet) -> List[Finding]:
    """Findings from the symbolic walk: shape errors + geometry notes."""
    findings: List[Finding] = []
    note_codes = {
        NOTE_DROPPED_PIXELS: NG_LOSSY_GEOMETRY,
        NOTE_SKIPPED_PIXELS: NG_LOSSY_GEOMETRY,
    }
    for inf in sym.layers:
        if inf.error is not None and not inf.skipped:
            # Unknown types already got NG007 from the structure lint.
            if shape_rule_for(inf.spec.type) is not None:
                findings.append(Finding(
                    rule=NG_SHAPE_MISMATCH, severity=ERROR,
                    layer=inf.spec.name, message=inf.error,
                ))
        if inf.result is not None:
            for kind, message in inf.result.notes:
                findings.append(Finding(
                    rule=note_codes.get(kind, NG_LOSSY_GEOMETRY),
                    severity=WARNING, layer=inf.spec.name, message=message,
                ))
    return findings


# ---------------------------------------------------------------------------
# planner
# ---------------------------------------------------------------------------
def _plan_schedules(
    sym: SymbolicNet, threads: Sequence[int]
) -> List[SchedulePlan]:
    """Chunk split per layer per thread count, via the runtime's own
    StaticSchedule — the prediction and the execution share the code."""
    schedule = StaticSchedule()
    plans: List[SchedulePlan] = []
    for num_threads in threads:
        plan = SchedulePlan(num_threads=num_threads)
        for inf in sym.layers:
            if inf.result is None:
                continue
            rule = shape_rule_for(inf.spec.type)
            sequential = bool(rule is not None and rule.sequential)
            space = int(inf.result.forward_space)
            per_thread = [
                sum(hi - lo for lo, hi in chunks)
                for chunks in schedule.plan(space, num_threads)
            ]
            if space > 0 and not sequential:
                imbalance = max(per_thread) * num_threads / space
            else:
                imbalance = 1.0
            plan.layers.append(LayerSchedulePlan(
                name=inf.spec.name, type=inf.spec.type, space=space,
                sequential=sequential, per_thread=per_thread,
                imbalance=imbalance,
            ))
        plans.append(plan)
    return plans


def _plan_memory(sym: SymbolicNet) -> MemoryPlan:
    plan = MemoryPlan()
    plan.param_bytes = sum(
        inf.result.param_count * BYTES
        for inf in sym.layers if inf.result is not None
    )
    plan.activation_bytes = sum(
        info.count * BYTES for info in sym.blob_map.values()
    )

    # Liveness over the split graph: a blob is live from its producing
    # layer (layer 0 for net inputs, which have no producer) to its last
    # consuming layer.  This is forward/inference liveness; training
    # keeps everything resident for the backward pass (activation_bytes).
    produced_at: Dict[str, int] = {}
    last_use: Dict[str, int] = {}
    for i, inf in enumerate(sym.layers):
        for top in inf.spec.tops:
            produced_at.setdefault(top, i)
            last_use[top] = i
        for bottom in inf.spec.bottoms:
            last_use[bottom] = i
    peak = 0
    for i in range(len(sym.layers)):
        resident = sum(
            info.count * BYTES
            for name, info in sym.blob_map.items()
            if produced_at.get(name, 0) <= i
            <= last_use.get(name, produced_at.get(name, 0))
        )
        peak = max(peak, resident)
    plan.peak_activation_bytes = peak
    return plan


def _layer_work(
    sym: SymbolicNet, costs: List[LayerCost]
) -> List[LayerWork]:
    flops_fwd: Dict[str, float] = {}
    flops_bwd: Dict[str, float] = {}
    for cost in costs:
        target = flops_fwd if cost.pass_ == "forward" else flops_bwd
        target[cost.name] = target.get(cost.name, 0.0) + cost.flops
    out: List[LayerWork] = []
    for inf in sym.layers:
        if inf.result is None:
            continue
        rule = shape_rule_for(inf.spec.type)
        out.append(LayerWork(
            name=inf.spec.name, type=inf.spec.type,
            space=int(inf.result.forward_space),
            sequential=bool(rule is not None and rule.sequential),
            flops_forward=flops_fwd.get(inf.spec.name, 0.0),
            flops_backward=flops_bwd.get(inf.spec.name, 0.0),
            param_count=inf.result.param_count,
            top_shapes=[info.shape for info in inf.result.tops],
        ))
    return out


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------
def check_spec(
    spec: NetSpec,
    phase: str = "TRAIN",
    threads: Sequence[int] = (1, 2, 8),
    batch: Optional[int] = None,
) -> NetcheckReport:
    """Lint + infer + plan one phase of ``spec``.

    Always returns a report; a spec that cannot even be walked (e.g. an
    in-place conflict the split inserter rejects) yields findings and an
    empty plan instead of raising.
    """
    report = NetcheckReport(net=spec.name, phase=phase, batch=batch)
    report.findings.extend(_lint_structure(spec, phase))

    try:
        sym = infer_net(spec, phase=phase, batch=batch, strict=False)
    except ValueError as exc:
        # _insert_splits rejects in-place conflicts outright.
        report.findings.append(Finding(
            rule=NG_ILLEGAL_INPLACE, severity=ERROR, layer="<net>",
            message=str(exc),
        ))
        return report

    report.findings.extend(_lint_inference(sym))
    report.shapes = {
        name: info.shape for name, info in sym.blob_map.items()
    }

    costs: List[LayerCost] = []
    if sym.ok:
        try:
            costs = spec_costs(spec, phase=phase, batch=batch)
        except (ValueError, KeyError):  # pragma: no cover - lint caught it
            costs = []
    report.layers = _layer_work(sym, costs)
    report.plans = _plan_schedules(sym, threads)
    report.memory = _plan_memory(sym)
    return report
