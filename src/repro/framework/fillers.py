"""Parameter fillers (Caffe's ``Filler`` hierarchy).

Fillers initialize layer coefficient blobs before training.  All fillers
draw from an explicit :class:`numpy.random.Generator` so network
initialization is reproducible — a prerequisite for the paper's
convergence-invariance experiments, where the sequential and parallel runs
must start from identical coefficients.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.framework.blob import DTYPE, Blob


def stable_seed(name: str) -> int:
    """Process-invariant fallback filler seed derived from a layer name.

    ``hash(name)`` is salted per interpreter process under hash
    randomization (PYTHONHASHSEED), so two processes deriving a fallback
    seed from the same layer name would initialize the same network
    differently — exactly the cross-process nondeterminism the
    convergence-invariance experiments forbid.  CRC-32 is a fixed function
    of the bytes: same name, same seed, in every process forever.
    """
    return zlib.crc32(name.encode("utf-8")) % (2**31)


@dataclass
class FillerSpec:
    """Declarative filler description, as parsed from a prototxt.

    ``type`` selects the filler; remaining fields are interpreted per type
    (e.g. ``value`` for constant, ``std`` for gaussian).
    """

    type: str = "constant"
    value: float = 0.0
    min: float = 0.0
    max: float = 1.0
    mean: float = 0.0
    std: float = 1.0
    variance_norm: str = "fan_in"
    extra: Dict[str, float] = field(default_factory=dict)


def _fans(blob: Blob) -> tuple[int, int]:
    """``(fan_in, fan_out)`` of a parameter blob, per Caffe conventions."""
    count = blob.count
    num = blob.shape[0] if blob.num_axes > 0 else 1
    channels_etc = count // max(num, 1)
    fan_in = channels_etc
    fan_out = count // blob.shape[1] if blob.num_axes > 1 else count
    return fan_in, fan_out


def fill(blob: Blob, spec: FillerSpec, rng: np.random.Generator) -> Blob:
    """Fill ``blob.data`` according to ``spec`` using ``rng``."""
    kind = spec.type.lower()
    if kind == "constant":
        blob.flat_data.fill(DTYPE(spec.value))
    elif kind == "uniform":
        if spec.max < spec.min:
            raise ValueError(f"uniform filler: max {spec.max} < min {spec.min}")
        blob.flat_data[:] = rng.uniform(spec.min, spec.max, blob.count).astype(DTYPE)
    elif kind == "gaussian":
        if spec.std < 0:
            raise ValueError(f"gaussian filler: negative std {spec.std}")
        blob.flat_data[:] = rng.normal(spec.mean, spec.std, blob.count).astype(DTYPE)
    elif kind == "xavier":
        fan_in, fan_out = _fans(blob)
        if spec.variance_norm == "fan_in":
            scale = np.sqrt(3.0 / fan_in)
        elif spec.variance_norm == "fan_out":
            scale = np.sqrt(3.0 / fan_out)
        elif spec.variance_norm == "average":
            scale = np.sqrt(6.0 / (fan_in + fan_out))
        else:
            raise ValueError(f"xavier filler: bad variance_norm {spec.variance_norm!r}")
        blob.flat_data[:] = rng.uniform(-scale, scale, blob.count).astype(DTYPE)
    elif kind == "msra":
        fan_in, fan_out = _fans(blob)
        if spec.variance_norm == "fan_in":
            n = fan_in
        elif spec.variance_norm == "fan_out":
            n = fan_out
        elif spec.variance_norm == "average":
            n = (fan_in + fan_out) / 2.0
        else:
            raise ValueError(f"msra filler: bad variance_norm {spec.variance_norm!r}")
        blob.flat_data[:] = rng.normal(0.0, np.sqrt(2.0 / n), blob.count).astype(DTYPE)
    elif kind == "positive_unitball":
        values = rng.uniform(0.0, 1.0, blob.count).astype(DTYPE)
        num = blob.shape[0] if blob.num_axes else 1
        per_row = blob.count // max(num, 1)
        mat = values.reshape(num, per_row)
        mat /= mat.sum(axis=1, keepdims=True)
        blob.flat_data[:] = mat.ravel()
    else:
        raise ValueError(f"unknown filler type {spec.type!r}")
    blob.mark_host_data_dirty()
    return blob
