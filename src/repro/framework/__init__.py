"""Caffe-like deep learning framework substrate.

This package re-implements, in Python, the parts of the Caffe framework
that the paper's coarse-grain parallelization operates on:

* :class:`~repro.framework.blob.Blob` — the unified N-d storage unit with
  ``data`` and ``diff`` halves and a host/device synchronization state
  machine (Section 2.1.1 of the paper).
* :mod:`repro.framework.layers` — the layer zoo.  Every layer implements
  the forward/backward interface of Algorithm 2/3 and, additionally, the
  *chunk protocol* that exposes its coalescable outer iteration space to
  the coarse-grain runtime (Algorithm 4/5).
* :class:`~repro.framework.net.Net` — DAG assembly from a parsed prototxt
  network definition, plus forward/backward drivers.
* :mod:`repro.framework.solvers` — SGD, AdaGrad and Nesterov solvers with
  Caffe's learning-rate policies.
"""

from repro.framework.blob import Blob, SyncState
from repro.framework.layer import Layer, LayerParams
from repro.framework.net import Net
from repro.framework.net_spec import LayerSpec, NetSpec
from repro.framework.prototxt import parse_prototxt

__all__ = [
    "Blob",
    "Layer",
    "LayerParams",
    "LayerSpec",
    "Net",
    "NetSpec",
    "SyncState",
    "parse_prototxt",
]
