"""Symbolic net construction: shape propagation without instantiation.

This mirrors the graph transformations of :class:`~repro.framework.net.Net`
— phase filtering, automatic Split insertion, in-place wiring — but pushes
:class:`~repro.framework.shape_inference.BlobInfo` records through the
registered shape rules instead of instantiating layers and allocating
blobs.  The resulting :class:`SymbolicNet` therefore has *exactly* the
blob names and shapes the real net would have (split copies included),
which is what lets :mod:`repro.analysis.netcheck` assert parity and
:func:`repro.simulator.cost_model.spec_costs` run the machine models from
a spec alone.

Two failure modes:

* ``strict=True`` (default): the first inference failure raises
  :class:`~repro.framework.shape_inference.ShapeError` (or ``KeyError``
  for an unregistered layer type) — the behaviour cost extraction wants;
* ``strict=False``: failures are recorded per layer and downstream layers
  whose bottoms became unknown are marked ``skipped`` — the behaviour the
  linter wants, so one bad layer yields one finding instead of aborting
  the whole report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.framework.net import _copy_layer_spec, _insert_splits
from repro.framework.net_spec import LayerSpec, NetSpec
from repro.framework.shape_inference import (
    BlobInfo,
    RuleResult,
    ShapeError,
    infer_layer,
)


@dataclass
class LayerInference:
    """Inference outcome for one layer of the (split-inserted) graph."""

    spec: LayerSpec
    bottoms: Optional[List[BlobInfo]]
    result: Optional[RuleResult]
    error: Optional[str] = None
    #: True when the layer was never inferred because an upstream failure
    #: left one of its bottoms without a shape.
    skipped: bool = False

    @property
    def ok(self) -> bool:
        return self.result is not None


@dataclass
class SymbolicNet:
    """Shape-inferred view of one phase of a :class:`NetSpec`."""

    name: str
    phase: str
    layers: List[LayerInference]
    #: blob name -> inferred info, over the split-inserted graph; matches
    #: ``Net.blob_map`` key-for-key when inference fully succeeds.
    blob_map: Dict[str, BlobInfo] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(layer.ok for layer in self.layers)

    def errors(self) -> List[str]:
        return [l.error for l in self.layers if l.error is not None]


def _override_batch(specs: List[LayerSpec], batch: int) -> None:
    """Rewrite every feeder's batch extent in-place (specs are copies)."""
    for spec in specs:
        type_name = spec.type.lower()
        if type_name in ("data", "memorydata") and "batch_size" in spec.params:
            spec.params["batch_size"] = batch
        elif type_name == "input":
            raw = spec.params.get("shape")
            blocks = raw if isinstance(raw, list) else [raw]
            for blk in blocks:
                if isinstance(blk, dict):
                    dims = blk.get("dim")
                    if isinstance(dims, list) and dims:
                        dims[0] = batch


def infer_net(
    spec: NetSpec,
    phase: str = "TRAIN",
    batch: Optional[int] = None,
    strict: bool = True,
) -> SymbolicNet:
    """Propagate shapes through one phase of ``spec``.

    ``batch`` overrides the batch extent of every feeder (Data/MemoryData
    ``batch_size``, Input and net-level input shapes' leading dim) before
    propagation, so what-if planning at a different batch size needs no
    spec surgery.
    """
    if batch is not None:
        batch = int(batch)
        if batch <= 0:
            raise ValueError(f"batch override must be positive, got {batch}")

    phase_specs = [_copy_layer_spec(s) for s in spec.layers_for_phase(phase)]
    if batch is not None:
        _override_batch(phase_specs, batch)
    phase_specs = _insert_splits(phase_specs)

    blob_map: Dict[str, BlobInfo] = {}
    for input_name, input_shape in zip(spec.inputs, spec.input_shapes):
        shape = tuple(int(d) for d in input_shape)
        if batch is not None and shape:
            shape = (batch,) + shape[1:]
        blob_map[input_name] = BlobInfo(shape)
    # Inputs beyond input_shapes get no entry: their consumers are
    # reported (lint NG006 / strict ShapeError) rather than guessed at.

    layers: List[LayerInference] = []
    for layer_spec in phase_specs:
        bottoms: List[BlobInfo] = []
        missing = None
        for bottom_name in layer_spec.bottoms:
            info = blob_map.get(bottom_name)
            if info is None:
                missing = bottom_name
                break
            bottoms.append(info)
        if missing is not None:
            msg = (
                f"layer {layer_spec.name!r}: bottom {missing!r} has no "
                "known shape"
            )
            if strict:
                raise ShapeError(msg)
            layers.append(LayerInference(
                layer_spec, None, None, error=msg, skipped=True,
            ))
            continue

        try:
            result = infer_layer(layer_spec, bottoms)
        except ShapeError as exc:
            if strict:
                raise
            layers.append(LayerInference(
                layer_spec, bottoms, None, error=str(exc),
            ))
            continue
        except KeyError as exc:
            if strict:
                raise
            layers.append(LayerInference(
                layer_spec, bottoms, None,
                error=str(exc.args[0]) if exc.args else str(exc),
            ))
            continue

        if len(result.tops) != len(layer_spec.tops):
            msg = (
                f"layer {layer_spec.name!r}: rule produced "
                f"{len(result.tops)} tops for {len(layer_spec.tops)} "
                "declared top(s)"
            )
            if strict:
                raise ShapeError(msg)
            layers.append(LayerInference(
                layer_spec, bottoms, None, error=msg,
            ))
            continue

        for top_name, info in zip(layer_spec.tops, result.tops):
            blob_map[top_name] = info
        layers.append(LayerInference(layer_spec, bottoms, result))

    return SymbolicNet(
        name=spec.name, phase=phase, layers=layers, blob_map=blob_map,
    )
