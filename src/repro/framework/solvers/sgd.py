"""Stochastic gradient descent with momentum (Caffe ``SGDSolver``)."""

from __future__ import annotations

from repro.framework.blob import DTYPE
from repro.framework.solvers.base import Solver


class SGDSolver(Solver):
    """Momentum SGD.

    Update rule (Caffe):
    ``V_{t+1} = momentum * V_t + local_lr * dW``;
    ``W_{t+1} = W_t - V_{t+1}``.
    The history buffer stores ``V``; the final subtraction happens in
    :meth:`repro.framework.blob.Blob.update` via the diff.
    """

    def compute_update_value(self, param_id: int, rate: float) -> None:
        blob = self.net.learnable_params[param_id]
        local_rate = DTYPE(rate * self.net.params_lr[param_id])
        momentum = DTYPE(self.params.momentum)
        history = self.history[param_id]
        # history = momentum * history + local_rate * diff
        history *= momentum
        history += local_rate * blob.flat_diff
        blob.flat_diff[:] = history
        blob.mark_host_diff_dirty()
