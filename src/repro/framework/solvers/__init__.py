"""Training solvers: SGD (with momentum), AdaGrad, Nesterov.

These implement Caffe's ``Solver`` hierarchy — the ``updateCoefficients``
step of the paper's Algorithm 1 — including learning-rate policies,
weight decay, gradient normalization by ``iter_size`` and parameter-wise
learning-rate multipliers.
"""

from repro.framework.solvers.base import Solver, SolverParams
from repro.framework.solvers.sgd import SGDSolver
from repro.framework.solvers.adagrad import AdaGradSolver
from repro.framework.solvers.nesterov import NesterovSolver
from repro.framework.solvers.lr_policy import learning_rate

__all__ = [
    "AdaGradSolver",
    "NesterovSolver",
    "SGDSolver",
    "Solver",
    "SolverParams",
    "learning_rate",
]


def create_solver(params: "SolverParams", net, test_net=None):
    """Instantiate the solver type named by ``params.type``."""
    kind = params.type.lower()
    table = {
        "sgd": SGDSolver,
        "adagrad": AdaGradSolver,
        "nesterov": NesterovSolver,
    }
    if kind not in table:
        raise ValueError(
            f"unknown solver type {params.type!r}; expected one of "
            f"{sorted(table)}"
        )
    return table[kind](params, net, test_net=test_net)
