"""AdaGrad solver (Duchi et al., cited as [13] in the paper)."""

from __future__ import annotations

import numpy as np

from repro.framework.blob import DTYPE
from repro.framework.solvers.base import Solver


class AdaGradSolver(Solver):
    """Adaptive subgradient method.

    ``H_{t+1} = H_t + dW^2``;
    ``W_{t+1} = W_t - local_lr * dW / (sqrt(H_{t+1}) + delta)``.
    Momentum must be zero (as Caffe enforces).
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if self.params.momentum:
            raise ValueError("AdaGrad does not support momentum")

    def compute_update_value(self, param_id: int, rate: float) -> None:
        blob = self.net.learnable_params[param_id]
        local_rate = DTYPE(rate * self.net.params_lr[param_id])
        history = self.history[param_id]
        grad = blob.flat_diff
        history += grad * grad
        blob.flat_diff[:] = (
            local_rate * grad / (np.sqrt(history) + DTYPE(self.params.delta))
        )
        blob.mark_host_diff_dirty()
