"""Learning-rate policies (Caffe's ``GetLearningRate``)."""

from __future__ import annotations

import math
from typing import Sequence


def learning_rate(
    policy: str,
    base_lr: float,
    iteration: int,
    *,
    gamma: float = 0.1,
    power: float = 0.75,
    stepsize: int = 1,
    stepvalues: Sequence[int] = (),
    max_iter: int = 1,
) -> float:
    """Learning rate at ``iteration`` under ``policy``.

    Policies (identical formulas to Caffe):

    * ``fixed`` — ``base_lr``
    * ``step`` — ``base_lr * gamma ^ floor(iter / stepsize)``
    * ``exp`` — ``base_lr * gamma ^ iter``
    * ``inv`` — ``base_lr * (1 + gamma * iter) ^ -power``
    * ``multistep`` — like step, advancing at each value in ``stepvalues``
    * ``poly`` — ``base_lr * (1 - iter / max_iter) ^ power``
    * ``sigmoid`` — ``base_lr / (1 + exp(-gamma * (iter - stepsize)))``
    """
    if iteration < 0:
        raise ValueError(f"iteration must be non-negative, got {iteration}")
    if policy == "fixed":
        return base_lr
    if policy == "step":
        if stepsize <= 0:
            raise ValueError(f"step policy needs stepsize > 0, got {stepsize}")
        return base_lr * gamma ** (iteration // stepsize)
    if policy == "exp":
        return base_lr * gamma ** iteration
    if policy == "inv":
        return base_lr * (1.0 + gamma * iteration) ** (-power)
    if policy == "multistep":
        step = 0
        for value in stepvalues:
            if iteration >= value:
                step += 1
        return base_lr * gamma ** step
    if policy == "poly":
        if max_iter <= 0:
            raise ValueError(f"poly policy needs max_iter > 0, got {max_iter}")
        frac = min(iteration / max_iter, 1.0)
        return base_lr * (1.0 - frac) ** power
    if policy == "sigmoid":
        return base_lr / (1.0 + math.exp(-gamma * (iteration - stepsize)))
    raise ValueError(f"unknown lr_policy {policy!r}")
