"""Nesterov accelerated gradient solver (cited as [23] in the paper)."""

from __future__ import annotations

from repro.framework.blob import DTYPE
from repro.framework.solvers.base import Solver


class NesterovSolver(Solver):
    """Nesterov momentum, in Caffe's formulation:

    ``V_{t+1} = momentum * V_t + local_lr * dW``;
    ``W_{t+1} = W_t - ((1 + momentum) * V_{t+1} - momentum * V_t)``.
    """

    def compute_update_value(self, param_id: int, rate: float) -> None:
        blob = self.net.learnable_params[param_id]
        local_rate = DTYPE(rate * self.net.params_lr[param_id])
        momentum = DTYPE(self.params.momentum)
        history = self.history[param_id]
        prev = history.copy()
        history *= momentum
        history += local_rate * blob.flat_diff
        blob.flat_diff[:] = (DTYPE(1.0) + momentum) * history - momentum * prev
        blob.mark_host_diff_dirty()
