"""Solver base class: the training loop of the paper's Algorithm 1.

The solver owns the outer ``while loss not acceptable`` loop: each step
zeroes parameter diffs, runs forward+backward (possibly ``iter_size``
times, accumulating), regularizes, computes the per-parameter update from
the learning rate, and applies it.

Execution of the forward/backward passes is delegated to a pluggable
*executor* so the identical solver drives both the sequential and the
coarse-grain parallel versions — the paper's convergence-invariance
property is exactly the statement that swapping this executor does not
change the trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.framework.blob import DTYPE
from repro.framework.net import Net
from repro.framework.solvers.lr_policy import learning_rate


@dataclass
class SolverParams:
    """Solver hyper-parameters (Caffe's ``SolverParameter``)."""

    type: str = "SGD"
    base_lr: float = 0.01
    lr_policy: str = "fixed"
    gamma: float = 0.1
    power: float = 0.75
    stepsize: int = 100
    stepvalues: Sequence[int] = field(default_factory=tuple)
    max_iter: int = 100
    momentum: float = 0.0
    weight_decay: float = 0.0
    regularization_type: str = "L2"
    iter_size: int = 1
    delta: float = 1e-8  # AdaGrad stabilizer
    display: int = 0
    test_interval: int = 0
    test_iter: int = 1
    clip_gradients: float = -1.0


class SequentialExecutor:
    """Default executor: plain sequential forward/backward."""

    def forward(self, net: Net) -> float:
        return net.forward()

    def backward(self, net: Net) -> None:
        net.backward()


class Solver:
    """Base solver; subclasses implement :meth:`compute_update_value`.

    Parameters
    ----------
    params:
        Hyper-parameters.
    net:
        Training-phase network.
    test_net:
        Optional test-phase network sharing parameters with ``net``
        (hook it up via :meth:`share_test_net_params`).
    executor:
        Object with ``forward(net)`` / ``backward(net)``; defaults to
        sequential execution.
    """

    def __init__(
        self,
        params: SolverParams,
        net: Net,
        test_net: Optional[Net] = None,
        executor=None,
    ) -> None:
        if params.iter_size < 1:
            raise ValueError(f"iter_size must be >= 1, got {params.iter_size}")
        self.params = params
        self.net = net
        self.test_net = test_net
        self.executor = executor or SequentialExecutor()
        self.iteration = 0
        self.loss_history: List[float] = []
        #: Per-parameter solver state (e.g. momentum buffers).
        self.history: List[np.ndarray] = [
            np.zeros(blob.count, dtype=DTYPE) for blob in net.learnable_params
        ]
        #: Optional :class:`~repro.resilience.guards.HealthGuard`; when
        #: set, every iteration of :meth:`step` runs through it (NaN/Inf
        #: sentinels + halt / skip-batch / rollback recovery).
        self.guard = None
        self._display_fn: Callable[[str], None] = lambda message: None

    def set_display(self, fn: Callable[[str], None]) -> None:
        """Install a logging callback used when ``params.display`` > 0."""
        self._display_fn = fn

    # ------------------------------------------------------------------
    # the training loop
    # ------------------------------------------------------------------
    def current_lr(self) -> float:
        p = self.params
        return learning_rate(
            p.lr_policy, p.base_lr, self.iteration,
            gamma=p.gamma, power=p.power, stepsize=p.stepsize,
            stepvalues=p.stepvalues, max_iter=p.max_iter,
        )

    def step(self, iters: int) -> float:
        """Run ``iters`` training iterations; returns the last loss.

        With a :attr:`guard` installed every iteration runs through its
        sentinels; the guarded path performs the identical operations
        in the identical order, so healthy trajectories are bitwise
        equal with and without a guard.
        """
        last_loss = 0.0
        for _ in range(iters):
            if self.guard is not None:
                last_loss = self.guard.step(self)
            else:
                self._maybe_test()
                loss = self._forward_backward()
                self.apply_update()
                last_loss = self._finish_iteration(loss)
        return last_loss

    def _maybe_test(self) -> None:
        """Run the periodic test pass when this iteration calls for it."""
        if (
            self.test_net is not None
            and self.params.test_interval > 0
            and self.iteration % self.params.test_interval == 0
        ):
            self.test()

    def _forward_backward(self) -> float:
        """Clear diffs and accumulate ``iter_size`` forward/backward
        passes; returns the averaged loss (update not yet applied)."""
        self.net.clear_param_diffs()
        loss = 0.0
        for _ in range(self.params.iter_size):
            loss += self.executor.forward(self.net)
            self.executor.backward(self.net)
        return loss / self.params.iter_size

    def _finish_iteration(self, loss: float) -> float:
        """Record ``loss``, display, advance the iteration counter."""
        self.loss_history.append(loss)
        if self.params.display and self.iteration % self.params.display == 0:
            self._display_fn(
                f"iteration {self.iteration}, lr {self.current_lr():.6g}, "
                f"loss {loss:.6f}"
            )
        self.iteration += 1
        return loss

    def solve(self) -> float:
        """Train to ``params.max_iter``."""
        return self.step(self.params.max_iter - self.iteration)

    def test(self) -> float:
        """Average the test net's loss/accuracy outputs over test_iter
        batches; returns the mean scalar of the first output."""
        assert self.test_net is not None
        scores: List[float] = []
        for _ in range(self.params.test_iter):
            self.executor.forward(self.test_net)
            for layer, tops in zip(self.test_net.layers, self.test_net.tops):
                if layer.type == "Accuracy":
                    scores.append(float(tops[0].flat_data[0]))
        return float(np.mean(scores)) if scores else 0.0

    # ------------------------------------------------------------------
    # the update (Caffe's ApplyUpdate pipeline)
    # ------------------------------------------------------------------
    def apply_update(self) -> None:
        rate = self.current_lr()
        self._normalize()
        self._regularize()
        self._clip_gradients()
        for param_id in range(len(self.net.learnable_params)):
            self.compute_update_value(param_id, rate)
        for blob in self.net.learnable_params:
            blob.update()

    def _normalize(self) -> None:
        if self.params.iter_size == 1:
            return
        scale = DTYPE(1.0 / self.params.iter_size)
        for blob in self.net.learnable_params:
            blob.scale_diff(scale)

    def _regularize(self) -> None:
        decay = self.params.weight_decay
        if not decay:
            return
        reg = self.params.regularization_type
        for blob, mult in zip(self.net.learnable_params, self.net.params_decay):
            local = DTYPE(decay * mult)
            if not local:
                continue
            if reg == "L2":
                diff = blob.flat_diff
                diff += local * blob.flat_data
            elif reg == "L1":
                diff = blob.flat_diff
                diff += local * np.sign(blob.flat_data)
            else:
                raise ValueError(f"unknown regularization type {reg!r}")

    def _clip_gradients(self) -> None:
        threshold = self.params.clip_gradients
        if threshold <= 0:
            return
        sumsq = sum(blob.sumsq_diff() for blob in self.net.learnable_params)
        norm = float(np.sqrt(sumsq))
        if norm > threshold:
            scale = DTYPE(threshold / norm)
            for blob in self.net.learnable_params:
                blob.scale_diff(scale)

    def compute_update_value(self, param_id: int, rate: float) -> None:
        """Transform ``diff`` into the actual step for parameter
        ``param_id`` (subclass responsibility)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # full-state snapshots (weights + solver history + iteration)
    # ------------------------------------------------------------------
    def save_state(self, path: str) -> None:
        """Serialize everything a resume needs (Caffe's ``.solverstate``).

        Delegates to :func:`repro.resilience.checkpoint.save_checkpoint`:
        the file is written atomically inside a CRC-32-checksummed
        container and captures the *complete* trajectory state — network
        parameters, per-parameter solver history, iteration counter,
        loss history, LR-policy identity, every layer's live RNG stream
        and every batch source's cursor — so resume-at-iter-k is bitwise
        identical to the uninterrupted run.
        """
        from repro.resilience.checkpoint import save_checkpoint

        save_checkpoint(self, path)

    def load_state(self, path: str) -> None:
        """Restore a :meth:`save_state` snapshot into this solver.

        The checksum is verified before anything is parsed
        (:class:`~repro.resilience.checkpoint.CheckpointCorrupt` on
        damage); pre-resilience snapshots and state that would silently
        fork the trajectory are rejected with
        :class:`~repro.resilience.checkpoint.CheckpointFormatError` /
        :class:`~repro.resilience.checkpoint.CheckpointMismatch`.
        """
        from repro.resilience.checkpoint import load_checkpoint

        load_checkpoint(self, path)

    # ------------------------------------------------------------------
    # test-net parameter sharing
    # ------------------------------------------------------------------
    def share_test_net_params(self) -> None:
        """Point the test net's parameter blobs at the training net's.

        Layers are matched by name; mismatched names are left untouched
        (e.g. phase-specific data layers).
        """
        assert self.test_net is not None
        train_layers = dict(zip(self.net.layer_names, self.net.layers))
        for layer in self.test_net.layers:
            source = train_layers.get(layer.name)
            if source is None or not source.blobs:
                continue
            if len(source.blobs) != len(layer.blobs):
                raise ValueError(
                    f"layer {layer.name!r}: train/test parameter count "
                    f"mismatch"
                )
            layer.blobs = source.blobs
