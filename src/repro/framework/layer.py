"""Layer base class, the chunk protocol, and the layer type registry.

Every layer mirrors the structure of the paper's Algorithms 2 and 3: a
nest of loops over the dimensions ``(S, D1, ..., DN)`` of the input blob,
applying a BLAS transformation per data segment.  The coarse-grain
parallelization (Algorithms 4 and 5) coalesces the outermost ``k`` of
those loops into a single iteration variable ``civ`` and distributes
contiguous ranges of ``civ`` across threads.

To make that *network-agnostic* — applicable to any layer without knowing
its computation — the base class defines the **chunk protocol**:

* :meth:`Layer.forward_space` — the coalesced iteration count of the
  forward pass (``S * D1 * ... * Dk``).
* :meth:`Layer.forward_chunk` — process iterations ``[lo, hi)`` of the
  forward pass.  Chunks write disjoint regions of the top blob, so threads
  need no synchronization.
* :meth:`Layer.backward_space` / :meth:`Layer.backward_chunk` — same for
  the backward pass.  ``backward_chunk`` receives *private* gradient
  buffers (one per parameter blob) to accumulate coefficient gradients
  into; the runtime merges them with an ordered reduction (Algorithm 5,
  lines 22-24).  Bottom-diff regions of distinct chunks are disjoint, so
  they are written directly.

The sequential path is *defined as* the chunk path over the full range —
``forward_cpu == forward_chunk(0, forward_space)`` — which is what makes
the parallel execution bitwise-comparable to the sequential one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple, Type

import numpy as np

from repro.framework.blob import Blob
from repro.framework.net_spec import LayerSpec

# ---------------------------------------------------------------------------
# write-footprint classification (the parallel-safety contract)
# ---------------------------------------------------------------------------
# Classification of a pass's writes with respect to the coalesced iteration
# space.  The coarse-grain runtime may distribute a pass across threads only
# when its writes are SAMPLE_DISJOINT (each iteration owns the regions it
# writes), REDUCTION (cross-iteration accumulation routed through the
# privatized ``param_grads`` buffers), or SEQUENTIAL (the pass runs as a
# single chunk; data layers).  UNKNOWN and UNSAFE mark layers the analyzer
# could not prove safe, respectively proved unsafe.
SAMPLE_DISJOINT = "sample_disjoint"
REDUCTION = "reduction"
SEQUENTIAL = "sequential"
UNKNOWN = "unknown"
UNSAFE = "unsafe"

#: Classifications a layer may *declare* (UNKNOWN/UNSAFE are verdicts the
#: analyzer produces, never valid declarations).
DECLARABLE_FOOTPRINTS = (SAMPLE_DISJOINT, REDUCTION, SEQUENTIAL)


@dataclass(frozen=True)
class FootprintDecl:
    """A layer's declared write footprint, checked by ``repro.analysis``.

    Attributes
    ----------
    forward / backward:
        Classification of the pass's writes (one of
        :data:`DECLARABLE_FOOTPRINTS`).
    reduction_params:
        Indices into ``self.blobs`` whose gradients the backward pass
        *accumulates* into the privatized ``param_grads`` buffers.  Must be
        non-empty exactly when ``backward == REDUCTION``.
    scratch:
        Names of instance attributes (numpy arrays) that chunk methods
        write, sliced by the chunk bounds — per-sample partials like a
        loss layer's ``_per_sample``.  Any other attribute write inside a
        chunk is hidden shared state and is flagged.
    """

    forward: str = SAMPLE_DISJOINT
    backward: str = SAMPLE_DISJOINT
    reduction_params: Tuple[int, ...] = ()
    scratch: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for label, value in (("forward", self.forward),
                             ("backward", self.backward)):
            if value not in DECLARABLE_FOOTPRINTS:
                raise ValueError(
                    f"footprint {label}={value!r} is not declarable; "
                    f"expected one of {DECLARABLE_FOOTPRINTS}"
                )
        if (self.backward == REDUCTION) != bool(self.reduction_params):
            raise ValueError(
                "reduction_params must be declared exactly when "
                f"backward == {REDUCTION!r} (got backward={self.backward!r}, "
                f"reduction_params={self.reduction_params})"
            )


# ---------------------------------------------------------------------------
# RNG provenance (the determinism contract, checked by repro.analysis.detcheck)
# ---------------------------------------------------------------------------
#: Where a layer's RNG draws happen.  ``setup`` — only during
#: :meth:`Layer.layer_setup` (parameter fillers; one fixed draw sequence
#: per construction).  ``per_forward`` — once per forward pass, in the
#: *sequential* :meth:`Layer.reshape` prologue (Dropout's mask), so the
#: draw count and order never depend on the thread count or chunking.
#: Draws inside chunk methods are never declarable: they are a
#: nondeterminism hazard by construction (lint DC004).
RNG_SETUP = "setup"
RNG_PER_FORWARD = "per_forward"

_RNG_DRAW_SITES = (RNG_SETUP, RNG_PER_FORWARD)
_RNG_FALLBACKS = ("constant", "stable_digest")


@dataclass(frozen=True)
class RNGDecl:
    """A layer's declared RNG provenance, checked by the determinism
    certifier (``repro.analysis.detcheck``).

    Attributes
    ----------
    seed_params:
        Spec parameter names the seed is read from (e.g.
        ``("filler_seed",)``); detcheck verifies the layer source actually
        reads each one.
    fallback:
        How the seed defaults when the spec omits every ``seed_params``
        entry: ``"constant"`` (a literal default) or ``"stable_digest"``
        (a process-invariant digest of the layer name via
        :func:`repro.framework.fillers.stable_seed` — never ``hash()``,
        which is salted per process under hash randomization).
    draws:
        :data:`RNG_SETUP` or :data:`RNG_PER_FORWARD` (see above).
    """

    seed_params: Tuple[str, ...]
    fallback: str = "constant"
    draws: str = RNG_SETUP

    def __post_init__(self) -> None:
        if not self.seed_params:
            raise ValueError(
                "an RNGDecl must name at least one seed parameter; a layer "
                "without seedable RNG should declare no provenance at all"
            )
        if self.fallback not in _RNG_FALLBACKS:
            raise ValueError(
                f"RNGDecl fallback={self.fallback!r} is not one of "
                f"{_RNG_FALLBACKS}"
            )
        if self.draws not in _RNG_DRAW_SITES:
            raise ValueError(
                f"RNGDecl draws={self.draws!r} is not one of "
                f"{_RNG_DRAW_SITES}"
            )


# ---------------------------------------------------------------------------
# performance allow-list (the perf contract, checked by repro.analysis.perfcheck)
# ---------------------------------------------------------------------------
#: Allowance categories a :class:`PerfDecl` may grant, keyed by the PE lint
#: rule each one silences.  ``float64`` — deliberate double-precision
#: accumulation in chunk code (PE001).  ``allocs`` — array-constructing
#: calls in chunk code that cannot (or need not) route through the scratch
#: pool (PE002).  ``copies`` — deliberate contiguity copies feeding BLAS
#: (PE003).  ``loops`` — Python-level loops over iteration-space-sized
#: ranges that are the architecture, not an accident (PE004): one BLAS call
#: per coalesced iteration, priced as ``segments`` dispatch by the cost
#: model.
_PERF_CATEGORIES = ("float64", "allocs", "copies", "loops")


@dataclass(frozen=True)
class PerfDecl:
    """A layer's declared performance allow-list, checked by the
    performance certifier (``repro.analysis.perfcheck``).

    Each field names the layer's *own* methods (chunk-reachable code) in
    which the corresponding anti-pattern is deliberate.  An allowance
    silences the matching PE lint rule for that method only; the lint
    still flags the construct anywhere undeclared, and flags stale
    allowances that no longer match any construct (PE005).  Inherited
    declarations never vouch for a subclass's own code.

    Attributes
    ----------
    float64:
        Methods that deliberately compute in ``np.float64`` — fixed-order
        double accumulation backing the bitwise-invariance contract
        (e.g. LRN's window sums).
    allocs:
        Methods whose array-constructing calls are deliberate: either the
        allocation is batch-sized-but-cheap (boolean masks, ``arange``
        index vectors) or has no pooled equivalent (``np.stack`` over a
        variable bottom list).
    copies:
        Methods whose explicit contiguity copies (``ascontiguousarray``,
        strided ``ravel``) feed BLAS calls that require contiguous
        operands.
    loops:
        Methods whose Python-level loop over an iteration-space-sized
        range is the documented chunking design (per-civ BLAS dispatch).
    note:
        One-line justification, required — a declaration without a *why*
        is just a silenced warning.
    """

    float64: Tuple[str, ...] = ()
    allocs: Tuple[str, ...] = ()
    copies: Tuple[str, ...] = ()
    loops: Tuple[str, ...] = ()
    note: str = ""

    def __post_init__(self) -> None:
        if not self.note.strip():
            raise ValueError(
                "a PerfDecl must carry a non-empty note explaining why "
                "the declared constructs are deliberate"
            )
        if not any(getattr(self, cat) for cat in _PERF_CATEGORIES):
            raise ValueError(
                "a PerfDecl must grant at least one allowance; a layer "
                "with no deliberate perf anti-patterns should declare "
                "no PerfDecl at all"
            )
        for cat in _PERF_CATEGORIES:
            methods = getattr(self, cat)
            if not isinstance(methods, tuple) or not all(
                isinstance(m, str) and m for m in methods
            ):
                raise ValueError(
                    f"PerfDecl {cat} must be a tuple of method names, "
                    f"got {methods!r}"
                )


@dataclass
class LoopSpec:
    """One parallel loop of a layer's backward pass.

    ``body(lo, hi, grads)`` processes coalesced iterations ``[lo, hi)``.
    When :attr:`reduction` is set, ``grads`` holds private accumulation
    buffers (flat, one per entry of :attr:`grad_targets`) that the runtime
    merges into the targets afterwards; otherwise ``grads`` is the target
    list itself (the body writes disjoint regions directly).
    """

    space: int
    body: Callable[[int, int, Sequence[np.ndarray]], None]
    reduction: bool = False
    grad_targets: Tuple[np.ndarray, ...] = field(default_factory=tuple)
    block: int = 1

LayerParams = Dict[str, object]

_REGISTRY: Dict[str, Type["Layer"]] = {}


def register_layer(*type_names: str) -> Callable[[Type["Layer"]], Type["Layer"]]:
    """Class decorator registering a layer under one or more type names."""

    def decorator(cls: Type["Layer"]) -> Type["Layer"]:
        for type_name in type_names:
            key = type_name.lower()
            if key in _REGISTRY:
                raise ValueError(f"layer type {type_name!r} registered twice")
            _REGISTRY[key] = cls
        cls.type_names = tuple(type_names)
        return cls

    return decorator


def create_layer(spec: LayerSpec) -> "Layer":
    """Instantiate the registered layer class for ``spec.type``."""
    cls = _REGISTRY.get(spec.type.lower())
    if cls is None:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown layer type {spec.type!r}; known types: {known}")
    return cls(spec)


def registered_layer_types() -> List[str]:
    return sorted(_REGISTRY)


class Layer:
    """Base class of all layers.

    Subclasses implement :meth:`setup`, :meth:`reshape`,
    :meth:`forward_chunk` and :meth:`backward_chunk`; everything else
    (sequential drivers, gradient-space defaults) is derived.
    """

    type_names: tuple = ()

    #: Declared write footprint (see :class:`FootprintDecl`).  ``None``
    #: means undeclared; ``repro.analysis`` flags any class that defines
    #: its own chunk methods without also declaring a footprint.
    write_footprint: FootprintDecl | None = None

    #: Declared RNG provenance (see :class:`RNGDecl`).  ``None`` means the
    #: layer draws no random numbers; ``repro.analysis.detcheck`` flags any
    #: class whose own methods construct an RNG without declaring where its
    #: seed comes from and when it draws (lint DC006).
    rng_provenance: RNGDecl | None = None

    #: Declared performance allow-list (see :class:`PerfDecl`).  ``None``
    #: means the layer's chunk code contains no deliberate perf
    #: anti-patterns; ``repro.analysis.perfcheck`` flags any undeclared
    #: float64 upcast, hot-loop allocation, contiguity copy, or
    #: iteration-space-sized Python loop in chunk-reachable code
    #: (lints PE001-PE004), and flags stale declarations (PE005).
    perf_decl: PerfDecl | None = None

    def __init__(self, spec: LayerSpec) -> None:
        self.spec = spec
        self.name = spec.name
        #: Parameter blobs (coefficients), e.g. ``[weights, bias]``.
        self.blobs: List[Blob] = []
        #: Per-top-blob loss weights; non-zero marks a loss output.
        self.loss_weights: List[float] = []
        self._setup_done = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def setup(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        """One-time initialization: validate counts, create parameters."""
        self.check_blob_counts(bottom, top)
        self.layer_setup(bottom, top)
        self.reshape(bottom, top)
        self.loss_weights = [0.0] * len(top)
        default = self.default_loss_weight()
        weight = self.spec.loss_weight
        if weight is None:
            weight = default
        if weight:
            self.loss_weights[0] = float(weight)
        self._setup_done = True

    def layer_setup(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        """Subclass hook: create parameter blobs, parse params."""

    # ------------------------------------------------------------------
    # RNG stream capture (checkpoint / resume)
    # ------------------------------------------------------------------
    def rng_state(self):
        """JSON-serializable state of this layer's live RNG stream, or
        ``None`` when the layer holds no persistent generator.

        The convention backing every stock layer: a layer that draws
        random numbers *per forward pass* (``RNG_PER_FORWARD``, e.g.
        Dropout's mask stream) keeps its generator in ``self._rng``;
        setup-only draws (weight fillers) use ephemeral generators that
        never need checkpointing.  A resume that skipped this state
        would silently fork the mask sequence — exactly the bug the
        resilience checkpoint format refuses to allow.
        """
        rng = getattr(self, "_rng", None)
        if rng is None:
            return None
        return rng.bit_generator.state

    def set_rng_state(self, state) -> None:
        """Restore a :meth:`rng_state` capture into the live generator."""
        rng = getattr(self, "_rng", None)
        if rng is None:
            raise ValueError(
                f"layer {self.name!r} has no persistent RNG stream to "
                "restore into"
            )
        rng.bit_generator.state = state

    def reshape(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        """Shape the top blobs (and scratch space) from the bottoms."""
        raise NotImplementedError

    def default_loss_weight(self) -> float:
        """Loss layers override this to return 1.0."""
        return 0.0

    # ------------------------------------------------------------------
    # blob-count contracts
    # ------------------------------------------------------------------
    exact_num_bottom: int | None = None
    min_num_bottom: int | None = None
    max_num_bottom: int | None = None
    exact_num_top: int | None = None
    min_num_top: int | None = None
    max_num_top: int | None = None

    def check_blob_counts(
        self, bottom: Sequence[Blob], top: Sequence[Blob]
    ) -> None:
        def check(label: str, blobs: Sequence[Blob], exact, lo, hi) -> None:
            n = len(blobs)
            if exact is not None and n != exact:
                raise ValueError(
                    f"layer {self.name!r}: expected exactly {exact} {label} "
                    f"blob(s), got {n}"
                )
            if lo is not None and n < lo:
                raise ValueError(
                    f"layer {self.name!r}: expected at least {lo} {label} "
                    f"blob(s), got {n}"
                )
            if hi is not None and n > hi:
                raise ValueError(
                    f"layer {self.name!r}: expected at most {hi} {label} "
                    f"blob(s), got {n}"
                )

        check("bottom", bottom, self.exact_num_bottom, self.min_num_bottom,
              self.max_num_bottom)
        check("top", top, self.exact_num_top, self.min_num_top,
              self.max_num_top)

    # ------------------------------------------------------------------
    # chunk protocol (the coarse-grain iteration space)
    # ------------------------------------------------------------------
    def forward_space(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> int:
        """Total coalesced iterations of the forward pass.

        Defaults to the batch size (pure batch-level parallelism, no
        coalescing); layers override to expose deeper coalescing
        (Algorithm 4's ``S * D1 * ... * Dk``).
        """
        return bottom[0].shape[0] if bottom and bottom[0].num_axes else 1

    def forward_chunk(
        self, bottom: Sequence[Blob], top: Sequence[Blob], lo: int, hi: int
    ) -> None:
        """Process forward iterations ``[lo, hi)``; must write only the
        top regions owned by those iterations."""
        raise NotImplementedError

    def backward_space(self, top: Sequence[Blob], bottom: Sequence[Blob]) -> int:
        """Total coalesced iterations of the backward pass (defaults to
        the forward space)."""
        return self.forward_space(bottom, top)

    def backward_chunk(
        self,
        top: Sequence[Blob],
        propagate_down: Sequence[bool],
        bottom: Sequence[Blob],
        lo: int,
        hi: int,
        param_grads: Sequence[np.ndarray],
    ) -> None:
        """Process backward iterations ``[lo, hi)``.

        ``param_grads`` holds one flat array per parameter blob;
        coefficient gradients for the chunk are *accumulated* into them
        (the privatized ``private-diffs`` of Algorithm 5).  Bottom diffs
        owned by the chunk are written directly (disjoint regions).
        """
        raise NotImplementedError

    def forward_finalize(
        self, bottom: Sequence[Blob], top: Sequence[Blob]
    ) -> None:
        """Sequential epilogue run once after all forward chunks.

        Layers whose top is a reduction over samples (losses, accuracy)
        compute per-sample partials in :meth:`forward_chunk` and fold them
        here, in fixed sample order — keeping the scalar bitwise identical
        for any thread count.
        """

    def grad_block(self, space: int, batch: int) -> int:
        """Accumulation-block size for deterministic gradient merges.

        The runtime never lets a gradient accumulation block straddle two
        threads; see :mod:`repro.core.reduction`.  The default is the
        per-sample extent of the coalesced space.
        """
        if batch <= 0 or space <= 0:
            return max(space, 1)
        per_sample = space // batch
        return max(per_sample, 1)

    def backward_loops(
        self,
        top: Sequence[Blob],
        propagate_down: Sequence[bool],
        bottom: Sequence[Blob],
    ) -> List[LoopSpec]:
        """The backward pass as a list of parallel loops.

        The default is a single loop over :meth:`backward_space` calling
        :meth:`backward_chunk`, requiring a privatized reduction exactly
        when the layer has coefficients.  Layers can override to decompose
        differently (e.g. InnerProduct computes weight gradients over
        disjoint output rows, avoiding the reduction entirely).
        """
        space = self.backward_space(top, bottom)
        batch = bottom[0].shape[0] if bottom and bottom[0].num_axes else 1

        def body(lo: int, hi: int, grads: Sequence[np.ndarray]) -> None:
            self.backward_chunk(top, propagate_down, bottom, lo, hi, grads)

        return [
            LoopSpec(
                space=space,
                body=body,
                reduction=bool(self.blobs),
                grad_targets=tuple(blob.flat_diff for blob in self.blobs),
                block=self.grad_block(space, batch),
            )
        ]

    # ------------------------------------------------------------------
    # sequential drivers (defined via the chunk path)
    # ------------------------------------------------------------------
    def forward(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> float:
        """Sequential forward pass; returns this layer's loss contribution."""
        self.reshape(bottom, top)
        space = self.forward_space(bottom, top)
        self.forward_chunk(bottom, top, 0, space)
        self.forward_finalize(bottom, top)
        loss = 0.0
        for top_blob, weight in zip(top, self.loss_weights):
            if weight:
                loss += weight * float(top_blob.flat_data[0])
        return loss

    def backward(
        self,
        top: Sequence[Blob],
        propagate_down: Sequence[bool],
        bottom: Sequence[Blob],
    ) -> None:
        """Sequential backward pass, accumulating into ``self.blobs`` diffs.

        Defined as each backward loop run over its full range with the
        real diffs as accumulation targets — the same code path the
        parallel runtime chunks, which is what makes the two executions
        comparable value-for-value.
        """
        for loop in self.backward_loops(top, propagate_down, bottom):
            loop.body(0, loop.space, loop.grad_targets)

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def footprint(self) -> FootprintDecl | None:
        """Effective footprint of this instance.

        Declarations are written against the layer's maximal parameter
        set; instances with fewer parameter blobs (e.g. a convolution
        without a bias term) get their ``reduction_params`` clipped.
        """
        decl = self.write_footprint
        if decl is None or not decl.reduction_params:
            return decl
        clipped = tuple(i for i in decl.reduction_params
                        if i < len(self.blobs))
        if clipped == decl.reduction_params:
            return decl
        if not clipped:
            # No surviving reduction target: the pass degenerates to a
            # disjoint one (nothing left to accumulate).
            return FootprintDecl(
                forward=decl.forward, backward=SAMPLE_DISJOINT,
                scratch=decl.scratch,
            )
        return FootprintDecl(
            forward=decl.forward, backward=decl.backward,
            reduction_params=clipped, scratch=decl.scratch,
        )

    @property
    def type(self) -> str:
        return self.spec.type

    def param_memory_bytes(self) -> int:
        """Bytes of coefficient storage (used by the memory experiment)."""
        return sum(blob.nbytes for blob in self.blobs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"
