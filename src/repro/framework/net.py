"""Net: assembles layers into a DAG and drives forward/backward passes.

Construction follows Caffe's ``Net::Init``:

1. filter the :class:`~repro.framework.net_spec.NetSpec` by phase;
2. automatically insert :class:`~repro.framework.layers.split.SplitLayer`
   instances wherever a blob is consumed by more than one downstream layer
   (so backward gradients accumulate correctly);
3. instantiate layers in definition order, wiring bottom/top blobs by
   name (identical bottom/top names request in-place operation);
4. compute, per layer and bottom, whether gradients must flow
   (``propagate_down``), by propagating "needs gradient" from parameters
   downstream.

The sequential training iteration of the paper's Algorithm 1 is
``net.forward()`` (lines 3-7) followed by ``net.backward()`` (lines 8-10);
the solver's ``updateCoefficients`` lives in :mod:`repro.framework.solvers`.
"""

from __future__ import annotations

import copy as _copy
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.framework.blob import Blob
from repro.framework.layer import Layer, create_layer
from repro.framework.net_spec import BlobLrSpec, LayerSpec, NetSpec


def _copy_layer_spec(spec: LayerSpec) -> LayerSpec:
    """Deep-copy a layer spec, sharing any injected live source object.

    ``source_object`` entries are runtime handles (batch sources with
    cursors, locks, thread teams behind them) passed in by reference;
    they must not be cloned.
    """
    source = spec.params.pop("source_object", None)
    try:
        clone = _copy.deepcopy(spec)
    finally:
        if source is not None:
            spec.params["source_object"] = source
    if source is not None:
        clone.params["source_object"] = source
    return clone


def _insert_splits(specs: List[LayerSpec]) -> List[LayerSpec]:
    """Rewrite the layer list, inserting Split layers for shared blobs.

    Returns a new list of (possibly rewritten copies of) layer specs.
    Mirrors Caffe's ``InsertSplits``: each *production* of a blob name may
    feed at most one consumer directly; extra consumers get split copies
    named ``<blob>_<producer>_split_<i>``.
    """
    # production id -> (producer index, blob name); consumption lists.
    producer_of: Dict[str, int] = {}
    consumers: Dict[tuple, List[int]] = {}
    inplace_consumer: Dict[tuple, int] = {}

    for idx, spec in enumerate(specs):
        for bottom in spec.bottoms:
            production = (bottom, producer_of.get(bottom, -1))
            if bottom in spec.tops:
                if production in inplace_consumer:
                    raise ValueError(
                        f"blob {bottom!r} has two in-place consumers "
                        f"({specs[inplace_consumer[production]].name!r} and "
                        f"{spec.name!r})"
                    )
                inplace_consumer[production] = idx
            else:
                consumers.setdefault(production, []).append(idx)
        for top in spec.tops:
            producer_of[top] = idx

    out: List[LayerSpec] = []
    # For consumers needing rewiring: (consumer idx, blob) -> new name.
    rewires: Dict[tuple, str] = {}
    splits_after: Dict[int, List[LayerSpec]] = {}

    for production, consumer_list in consumers.items():
        blob_name, producer_idx = production
        if production in inplace_consumer and consumer_list:
            raise ValueError(
                f"blob {blob_name!r} is consumed in-place by "
                f"{specs[inplace_consumer[production]].name!r} but also by "
                f"{[specs[i].name for i in consumer_list]}; Caffe forbids this"
            )
        if len(consumer_list) <= 1:
            continue
        producer_name = (
            specs[producer_idx].name if producer_idx >= 0 else "input"
        )
        split_tops = [
            f"{blob_name}_{producer_name}_split_{i}"
            for i in range(len(consumer_list))
        ]
        split_spec = LayerSpec(
            name=f"{blob_name}_{producer_name}_split",
            type="Split",
            bottoms=[blob_name],
            tops=split_tops,
        )
        splits_after.setdefault(producer_idx, []).append(split_spec)
        for i, consumer_idx in enumerate(consumer_list):
            rewires[(consumer_idx, blob_name)] = split_tops[i]

    for idx, spec in enumerate(specs):
        needed = [(k, v) for k, v in rewires.items() if k[0] == idx]
        if needed:
            spec = _copy.deepcopy(spec)
            for (_, blob_name), new_name in needed:
                spec.bottoms = [
                    new_name if b == blob_name else b for b in spec.bottoms
                ]
        out.append(spec)
        for split_spec in splits_after.get(idx, []):
            out.append(split_spec)
    # Splits for input blobs (producer_idx == -1) go first.
    prefix = splits_after.get(-1, [])
    return prefix + out


class Net:
    """A runnable network for one phase.

    Parameters
    ----------
    spec:
        The parsed network definition.
    phase:
        ``"TRAIN"`` or ``"TEST"``.
    sources:
        Optional mapping from data-layer names to batch-source objects,
        injected as each data layer's ``source_object`` (overriding the
        registry lookup).  This is how tests and examples plug synthetic
        datasets in.
    """

    def __init__(
        self,
        spec: NetSpec,
        phase: str = "TRAIN",
        sources: Optional[Dict[str, object]] = None,
    ) -> None:
        spec.validate()
        self.name = spec.name
        self.phase = phase
        phase_specs = [
            _copy_layer_spec(s) for s in spec.layers_for_phase(phase)
        ]
        if sources:
            for layer_spec in phase_specs:
                if layer_spec.name in sources:
                    layer_spec.params["source_object"] = sources[layer_spec.name]
        phase_specs = _insert_splits(phase_specs)

        self.layers: List[Layer] = []
        self.layer_names: List[str] = []
        self.blob_map: Dict[str, Blob] = {}
        self.bottoms: List[List[Blob]] = []
        self.tops: List[List[Blob]] = []
        self.bottom_need_backward: List[List[bool]] = []
        self._blob_needs_grad: Dict[int, bool] = {}  # id(blob) -> bool

        # validate() guarantees len(input_shapes) >= len(inputs); an input
        # without a declared shape is a spec error, not an empty blob.
        for input_name, input_shape in zip(spec.inputs, spec.input_shapes):
            blob = Blob(tuple(input_shape), name=input_name)
            self.blob_map[input_name] = blob
            self._blob_needs_grad[id(blob)] = False

        for layer_spec in phase_specs:
            self._append_layer(layer_spec)

        self.learnable_params: List[Blob] = []
        self.params_lr: List[float] = []
        self.params_decay: List[float] = []
        self.param_owners: List[str] = []
        for layer, layer_spec in zip(self.layers, phase_specs):
            for i, blob in enumerate(layer.blobs):
                param_spec = (
                    layer_spec.param_specs[i]
                    if i < len(layer_spec.param_specs)
                    else BlobLrSpec()
                )
                self.learnable_params.append(blob)
                self.params_lr.append(param_spec.lr_mult)
                self.params_decay.append(param_spec.decay_mult)
                self.param_owners.append(layer.name)

    def _append_layer(self, layer_spec: LayerSpec) -> None:
        bottom_blobs: List[Blob] = []
        for bottom_name in layer_spec.bottoms:
            if bottom_name not in self.blob_map:
                raise ValueError(
                    f"layer {layer_spec.name!r} consumes unknown blob "
                    f"{bottom_name!r}"
                )
            bottom_blobs.append(self.blob_map[bottom_name])
        top_blobs: List[Blob] = []
        for top_name in layer_spec.tops:
            if top_name in layer_spec.bottoms:
                top_blobs.append(self.blob_map[top_name])  # in-place
            else:
                blob = Blob((), name=top_name)
                self.blob_map[top_name] = blob
                top_blobs.append(blob)

        layer = create_layer(layer_spec)
        if hasattr(layer, "train_mode"):
            layer.train_mode = self.phase == "TRAIN"
        layer.setup(bottom_blobs, top_blobs)

        needs = any(
            self._blob_needs_grad.get(id(b), False) for b in bottom_blobs
        ) or bool(layer.blobs)
        propagate = [
            self._blob_needs_grad.get(id(b), False) for b in bottom_blobs
        ]
        # Integer-label bottoms of loss/accuracy layers never need grads;
        # the generic rule already gives False unless upstream has params.
        for top_blob in top_blobs:
            self._blob_needs_grad[id(top_blob)] = needs

        self.layers.append(layer)
        self.layer_names.append(layer_spec.name)
        self.bottoms.append(bottom_blobs)
        self.tops.append(top_blobs)
        self.bottom_need_backward.append(propagate)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def forward(self) -> float:
        """Run the full forward pass; returns the weighted total loss."""
        total = 0.0
        for layer, bottom, top in zip(self.layers, self.bottoms, self.tops):
            total += layer.forward(bottom, top)
        return total

    def backward(self) -> None:
        """Run the full backward pass, accumulating parameter diffs."""
        self._seed_loss_diffs()
        for i in range(len(self.layers) - 1, -1, -1):
            layer = self.layers[i]
            if not any(self.bottom_need_backward[i]) and not layer.blobs:
                continue
            layer.backward(self.tops[i], self.bottom_need_backward[i],
                           self.bottoms[i])

    def _seed_loss_diffs(self) -> None:
        """Set d(total)/d(loss output) = 1 on every loss top."""
        for layer, tops in zip(self.layers, self.tops):
            for top_blob, weight in zip(tops, layer.loss_weights):
                if weight:
                    top_blob.flat_diff[0] = 1.0
                    top_blob.mark_host_diff_dirty()

    def forward_backward(self) -> float:
        loss = self.forward()
        self.backward()
        return loss

    def clear_param_diffs(self) -> None:
        for blob in self.learnable_params:
            blob.zero_diff()

    # ------------------------------------------------------------------
    # access helpers
    # ------------------------------------------------------------------
    def blob(self, name: str) -> Blob:
        if name not in self.blob_map:
            known = ", ".join(sorted(self.blob_map))
            raise KeyError(f"net has no blob {name!r}; blobs: {known}")
        return self.blob_map[name]

    def layer(self, name: str) -> Layer:
        for layer_name, layer in zip(self.layer_names, self.layers):
            if layer_name == name:
                return layer
        raise KeyError(f"net has no layer {name!r}")

    def has_layer(self, name: str) -> bool:
        return name in self.layer_names

    # ------------------------------------------------------------------
    # parameter snapshot / restore
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, List[np.ndarray]]:
        """Copy of every layer's parameter arrays, keyed by layer name."""
        state: Dict[str, List[np.ndarray]] = {}
        for layer in self.layers:
            if layer.blobs:
                state[layer.name] = [b.data.copy() for b in layer.blobs]
        return state

    def load_state_dict(self, state: Dict[str, Sequence[np.ndarray]]) -> None:
        for layer in self.layers:
            if layer.name in state:
                arrays = state[layer.name]
                if len(arrays) != len(layer.blobs):
                    raise ValueError(
                        f"layer {layer.name!r}: snapshot has {len(arrays)} "
                        f"blobs, layer has {len(layer.blobs)}"
                    )
                for blob, arr in zip(layer.blobs, arrays):
                    blob.set_data(np.asarray(arr))

    def save(self, path: str) -> None:
        """Serialize parameters to an ``.npz`` file.

        The write is atomic (temp file + ``os.replace``, so a crash
        mid-save cannot destroy a previous snapshot) and embeds a
        CRC-32 digest entry that :meth:`load` verifies.  The file stays
        a plain ``np.load``-able archive for interchange.
        """
        from repro.resilience.checkpoint import atomic_savez_with_digest

        flat: Dict[str, np.ndarray] = {}
        for layer_name, arrays in self.state_dict().items():
            for i, arr in enumerate(arrays):
                flat[f"{layer_name}::{i}"] = arr
        atomic_savez_with_digest(path, flat)

    def load(self, path: str) -> None:
        """Restore a :meth:`save` snapshot, verifying its digest first.

        A truncated/garbled file raises
        :class:`~repro.resilience.checkpoint.CheckpointCorrupt` naming
        the file and the expected/actual digest instead of a raw
        zipfile error.
        """
        from repro.resilience.checkpoint import load_npz_verified

        state: Dict[str, List[np.ndarray]] = {}
        for key, arr in load_npz_verified(path).items():
            layer_name, idx = key.rsplit("::", 1)
            state.setdefault(layer_name, []).append((int(idx), arr))
        ordered = {
            name: [arr for _, arr in sorted(pairs)]
            for name, pairs in state.items()
        }
        self.load_state_dict(ordered)

    def memory_bytes(self) -> int:
        """Total blob memory (activations + parameters), for the paper's
        Section 3.2.1 memory accounting."""
        seen = set()
        total = 0
        for blob in self.blob_map.values():
            if id(blob) not in seen:
                seen.add(id(blob))
                total += blob.nbytes
        for layer in self.layers:
            for blob in layer.blobs:
                if id(blob) not in seen:
                    seen.add(id(blob))
                    total += blob.nbytes
        return total
