"""Data layers: the network's input feeders.

As in Caffe, data layers *execute sequentially* — the paper repeatedly
points at this as a locality limiter (the data layer's memory footprint is
produced by one thread, then consumed by many in conv1).  We reproduce
that by reporting a forward space of 1: the coarse-grain runtime therefore
runs the layer as a single chunk.

``DataLayer`` pulls batches from a registered *batch source* (the offline
substitute for Caffe's LMDB readers; see :mod:`repro.data`), ``MemoryDataLayer``
serves arrays supplied by the caller, and ``InputLayer`` just shapes a top
blob for externally filled input.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

import numpy as np

from repro.framework.blob import DTYPE, Blob
from repro.framework.layer import FootprintDecl, Layer, SEQUENTIAL, register_layer
from repro.framework.shape_inference import (
    BlobInfo,
    RuleResult,
    ShapeError,
    register_shape_rule,
)

#: Registry mapping source names (as written in prototxt ``source:`` fields)
#: to zero-argument factories returning batch-source objects.  A batch
#: source provides ``next_batch(n) -> (images, labels)`` and ``shape``
#: (``(C, H, W)`` of one sample).
_SOURCE_REGISTRY: Dict[str, Callable[[], object]] = {}

#: Declared per-sample shapes, kept separately so static analysis can
#: resolve a source's geometry without running its factory (factories may
#: render whole synthetic datasets).
_SOURCE_SHAPES: Dict[str, tuple] = {}


def register_source(
    name: str,
    factory: Callable[[], object],
    shape: tuple | None = None,
) -> None:
    """Register a batch-source factory under ``name``.

    ``shape`` optionally declares the per-sample ``(C, H, W)`` geometry
    up front; without it, static shape inference has to fall back to
    instantiating the source (see :func:`declared_source_shape`).
    """
    _SOURCE_REGISTRY[name] = factory
    if shape is not None:
        _SOURCE_SHAPES[name] = tuple(int(d) for d in shape)
    else:
        _SOURCE_SHAPES.pop(name, None)


def declared_source_shape(name: str) -> tuple | None:
    """Per-sample ``(C, H, W)`` of a registered source, or None.

    Prefers the shape declared at registration; a source registered
    without one yields None (static analysis then reports the data
    layer as uninferable rather than running the factory).
    """
    return _SOURCE_SHAPES.get(name)


def create_source(name: str) -> object:
    factory = _SOURCE_REGISTRY.get(name)
    if factory is None:
        known = ", ".join(sorted(_SOURCE_REGISTRY)) or "<none>"
        raise KeyError(f"unknown data source {name!r}; registered: {known}")
    return factory()


@register_layer("Data")
class DataLayer(Layer):
    """Feeds batches from a batch source.

    Parameters (``data_param``): ``source`` (registered source name, or an
    object passed as ``source_object``), ``batch_size``.  Transform
    parameters (``transform_param``): ``scale`` (default 1.0),
    ``mean_value`` (scalar subtracted before scaling).
    """

    exact_num_bottom = 0
    min_num_top = 1
    max_num_top = 2

    write_footprint = FootprintDecl(forward=SEQUENTIAL, backward=SEQUENTIAL)

    def layer_setup(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        spec = self.spec
        self.batch_size = int(spec.require("batch_size"))
        if self.batch_size <= 0:
            raise ValueError(
                f"layer {self.name!r}: batch_size must be positive"
            )
        source = spec.param("source_object")
        if source is None:
            source = create_source(str(spec.require("source")))
        self.source = source
        self.scale = float(spec.param("scale", 1.0))
        self.mean_value = float(spec.param("mean_value", 0.0))

    def reshape(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        c, h, w = self.source.shape
        top[0].reshape((self.batch_size, c, h, w))
        if len(top) > 1:
            top[1].reshape((self.batch_size,))

    def forward_space(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> int:
        return 1  # data layers run sequentially (paper Section 4.3)

    def forward_chunk(
        self, bottom: Sequence[Blob], top: Sequence[Blob], lo: int, hi: int
    ) -> None:
        if lo >= hi:
            return
        images, labels = self.source.next_batch(self.batch_size)
        data = np.asarray(images, dtype=DTYPE)
        if data.shape != top[0].shape:
            raise ValueError(
                f"layer {self.name!r}: source produced shape {data.shape}, "
                f"expected {top[0].shape}"
            )
        if self.mean_value:
            data = data - DTYPE(self.mean_value)
        if self.scale != 1.0:
            data = data * DTYPE(self.scale)
        top[0].flat_data[:] = data.ravel()
        top[0].mark_host_data_dirty()
        if len(top) > 1:
            top[1].flat_data[:] = np.asarray(labels, dtype=DTYPE).ravel()
            top[1].mark_host_data_dirty()

    def backward_chunk(self, *args, **kwargs) -> None:
        pass  # data layers have nothing to backpropagate


@register_layer("MemoryData")
class MemoryDataLayer(Layer):
    """Serves caller-provided arrays (Caffe MemoryDataLayer).

    Call :meth:`set_batch` before each forward pass.  Parameters:
    ``batch_size``, ``channels``, ``height``, ``width``.
    """

    exact_num_bottom = 0
    min_num_top = 1
    max_num_top = 2

    write_footprint = FootprintDecl(forward=SEQUENTIAL, backward=SEQUENTIAL)

    def layer_setup(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        spec = self.spec
        self.batch_size = int(spec.require("batch_size"))
        self.channels = int(spec.param("channels", 1))
        self.height = int(spec.param("height", 1))
        self.width = int(spec.param("width", 1))
        self._images: np.ndarray | None = None
        self._labels: np.ndarray | None = None

    def set_batch(self, images: np.ndarray, labels: np.ndarray | None = None) -> None:
        expected = (self.batch_size, self.channels, self.height, self.width)
        images = np.asarray(images, dtype=DTYPE)
        if images.shape != expected:
            raise ValueError(
                f"layer {self.name!r}: batch shape {images.shape} != {expected}"
            )
        self._images = images
        self._labels = (
            np.asarray(labels, dtype=DTYPE) if labels is not None else None
        )

    def reshape(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        top[0].reshape(
            (self.batch_size, self.channels, self.height, self.width)
        )
        if len(top) > 1:
            top[1].reshape((self.batch_size,))

    def forward_space(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> int:
        return 1

    def forward_chunk(
        self, bottom: Sequence[Blob], top: Sequence[Blob], lo: int, hi: int
    ) -> None:
        if lo >= hi:
            return
        if self._images is None:
            raise RuntimeError(
                f"layer {self.name!r}: set_batch() was never called"
            )
        top[0].flat_data[:] = self._images.ravel()
        top[0].mark_host_data_dirty()
        if len(top) > 1:
            if self._labels is None:
                raise RuntimeError(
                    f"layer {self.name!r}: labels requested but not provided"
                )
            top[1].flat_data[:] = self._labels.ravel()
            top[1].mark_host_data_dirty()

    def backward_chunk(self, *args, **kwargs) -> None:
        pass


@register_layer("Input")
class InputLayer(Layer):
    """Declares an externally filled input blob of a fixed shape.

    Parameters (``input_param``): ``shape`` — a dict with a ``dim`` list.
    """

    exact_num_bottom = 0
    min_num_top = 1

    write_footprint = FootprintDecl(forward=SEQUENTIAL, backward=SEQUENTIAL)

    def layer_setup(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        raw = self.spec.require("shape")
        shapes = raw if isinstance(raw, list) else [raw]
        self.shapes = []
        for blk in shapes:
            dims = blk.get("dim") if isinstance(blk, dict) else blk
            if not isinstance(dims, list):
                dims = [dims]
            self.shapes.append(tuple(int(d) for d in dims))
        if len(self.shapes) not in (1, len(top)):
            raise ValueError(
                f"layer {self.name!r}: {len(self.shapes)} shapes for "
                f"{len(top)} tops"
            )

    def reshape(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        for i, t in enumerate(top):
            shape = self.shapes[i if len(self.shapes) > 1 else 0]
            t.reshape(shape)

    def forward_space(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> int:
        return 1

    def forward_chunk(
        self, bottom: Sequence[Blob], top: Sequence[Blob], lo: int, hi: int
    ) -> None:
        pass  # contents are supplied externally

    def backward_chunk(self, *args, **kwargs) -> None:
        pass


# ---------------------------------------------------------------------------
# inference rules (the feeders anchor every downstream symbolic shape)
# ---------------------------------------------------------------------------
@register_shape_rule("Data", sequential=True)
def _data_shape_rule(spec, bottoms) -> RuleResult:
    batch = int(spec.require("batch_size"))
    if batch <= 0:
        raise ShapeError(
            f"layer {spec.name!r}: batch_size must be positive, got {batch}"
        )
    source = spec.param("source_object")
    if source is not None and hasattr(source, "shape"):
        sample = tuple(int(d) for d in source.shape)
    else:
        name = spec.param("source")
        sample = declared_source_shape(str(name)) if name else None
    if sample is None:
        raise ShapeError(
            f"layer {spec.name!r}: data source "
            f"{spec.param('source')!r} declares no sample shape; register "
            "it with register_source(..., shape=(C, H, W))"
        )
    tops = [BlobInfo((batch,) + sample)]
    if len(spec.tops) > 1:
        tops.append(BlobInfo((batch,)))
    return RuleResult(tops=tops, forward_space=1)


@register_shape_rule("MemoryData", sequential=True)
def _memory_data_shape_rule(spec, bottoms) -> RuleResult:
    batch = int(spec.require("batch_size"))
    if batch <= 0:
        raise ShapeError(
            f"layer {spec.name!r}: batch_size must be positive, got {batch}"
        )
    shape = (
        batch,
        int(spec.param("channels", 1)),
        int(spec.param("height", 1)),
        int(spec.param("width", 1)),
    )
    tops = [BlobInfo(shape)]
    if len(spec.tops) > 1:
        tops.append(BlobInfo((batch,)))
    return RuleResult(tops=tops, forward_space=1)


@register_shape_rule("Input", sequential=True)
def _input_shape_rule(spec, bottoms) -> RuleResult:
    raw = spec.require("shape")
    shapes = raw if isinstance(raw, list) else [raw]
    parsed = []
    for blk in shapes:
        dims = blk.get("dim") if isinstance(blk, dict) else blk
        if not isinstance(dims, list):
            dims = [dims]
        parsed.append(tuple(int(d) for d in dims))
    if len(parsed) not in (1, len(spec.tops)):
        raise ShapeError(
            f"layer {spec.name!r}: {len(parsed)} shapes for "
            f"{len(spec.tops)} tops"
        )
    tops = [
        BlobInfo(parsed[i if len(parsed) > 1 else 0])
        for i in range(len(spec.tops))
    ]
    return RuleResult(tops=tops, forward_space=1)
