"""Inner product (fully connected) layer.

Treats the bottom blob as a matrix ``(S, inner)`` — all axes after the
batch axis are flattened — and computes ``Y = X @ W.T + b``.  The
coalesced iteration space is ``S``: one iteration is one sample's
``gemv``-sized product, and a chunk ``[lo, hi)`` is one ``gemm`` over the
chunk's rows.  The backward pass accumulates ``dW`` and ``db`` into the
privatized gradient buffers (Algorithm 5) and writes the chunk's rows of
the bottom diff directly.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro import blaslib
from repro.framework.blob import Blob
from repro.framework.fillers import fill, stable_seed
from repro.framework.layer import (
    FootprintDecl,
    Layer,
    PerfDecl,
    RNGDecl,
    register_layer,
)
from repro.framework.layers.conv import _filler_spec
from repro.framework.shape_inference import (
    BlobInfo,
    RuleResult,
    canonical_axis,
    register_shape_rule,
)


@register_layer("InnerProduct")
class InnerProductLayer(Layer):
    """Fully connected layer.

    Parameters (``inner_product_param``): ``num_output``, ``bias_term``
    (default true), ``axis`` (default 1), ``weight_filler``,
    ``bias_filler``.
    """

    exact_num_bottom = 1
    exact_num_top = 1

    # backward_loops() decomposes into reduction-free loops (bottom-grad
    # rows over samples, weight-grad rows over outputs), so the executed
    # footprint is sample-disjoint despite the generic backward_chunk.
    write_footprint = FootprintDecl()

    perf_decl = PerfDecl(
        loops=("forward_chunk", "_backward_data_chunk",
               "_backward_weight_rows"),
        copies=("_backward_weight_rows",),
        note=(
            "one gemv per coalesced iteration is the chunking design "
            "(priced as segments dispatch by the cost model): per-sample "
            "in forward/backward-data, per-output-row in backward-weight, "
            "where the strided dy column is copied contiguous because "
            "gemv requires a contiguous operand"
        ),
    )

    rng_provenance = RNGDecl(seed_params=("filler_seed",),
                             fallback="stable_digest")

    def layer_setup(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        spec = self.spec
        self.num_output = int(spec.require("num_output"))
        self.bias_term = bool(spec.param("bias_term", True))
        self.axis = bottom[0].canonical_axis(int(spec.param("axis", 1)))
        inner = 1
        for dim in bottom[0].shape[self.axis:]:
            inner *= dim
        self.inner = inner

        rng = np.random.default_rng(
            int(spec.param("filler_seed", 0)) or stable_seed(self.name)
        )
        weights = Blob((self.num_output, inner), name=f"{self.name}.weights")
        fill(weights, _filler_spec(spec.param("weight_filler")), rng)
        self.blobs = [weights]
        if self.bias_term:
            bias = Blob((self.num_output,), name=f"{self.name}.bias")
            fill(bias, _filler_spec(spec.param("bias_filler")), rng)
            self.blobs.append(bias)

    def reshape(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        inner = 1
        for dim in bottom[0].shape[self.axis:]:
            inner *= dim
        if inner != self.inner:
            raise ValueError(
                f"layer {self.name!r}: input inner size changed from "
                f"{self.inner} to {inner}"
            )
        self.outer = 1
        for dim in bottom[0].shape[: self.axis]:
            self.outer *= dim
        top[0].reshape(tuple(bottom[0].shape[: self.axis]) + (self.num_output,))

    def forward_space(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> int:
        return self.outer

    def forward_chunk(
        self, bottom: Sequence[Blob], top: Sequence[Blob], lo: int, hi: int
    ) -> None:
        # One fixed-shape gemv per sample (rather than one chunk-wide
        # gemm): the per-sample value is then independent of how samples
        # are chunked across threads, which the blockwise reduction's
        # bitwise thread-count invariance relies on.
        x = bottom[0].flat_data.reshape(self.outer, self.inner)
        y = top[0].flat_data.reshape(self.outer, self.num_output)
        weights = self.blobs[0].data
        bias = self.blobs[1].data if self.bias_term else None
        for s in range(lo, hi):
            blaslib.gemv(False, 1.0, weights, x[s], 0.0, y[s])
            if bias is not None:
                y[s] += bias
        top[0].mark_host_data_dirty()

    def backward_chunk(
        self,
        top: Sequence[Blob],
        propagate_down: Sequence[bool],
        bottom: Sequence[Blob],
        lo: int,
        hi: int,
        param_grads: Sequence[np.ndarray],
    ) -> None:
        x = bottom[0].flat_data.reshape(self.outer, self.inner)[lo:hi]
        dy = top[0].flat_diff.reshape(self.outer, self.num_output)[lo:hi]
        dweights = param_grads[0].reshape(self.num_output, self.inner)
        # dW += dY^T @ X over the chunk's rows.
        blaslib.gemm(True, False, 1.0, dy, x, 1.0, dweights)
        if self.bias_term:
            param_grads[1] += dy.sum(axis=0)
        if propagate_down[0]:
            self._backward_data_chunk(top, bottom, lo, hi)

    def _backward_data_chunk(
        self, top: Sequence[Blob], bottom: Sequence[Blob], lo: int, hi: int
    ) -> None:
        """Bottom-gradient rows for samples ``[lo, hi)`` (disjoint).

        Per-sample gemv for the same chunking-invariance reason as
        :meth:`forward_chunk`.
        """
        dy = top[0].flat_diff.reshape(self.outer, self.num_output)
        dx = bottom[0].flat_diff.reshape(self.outer, self.inner)
        weights = self.blobs[0].data
        for s in range(lo, hi):
            blaslib.gemv(True, 1.0, weights, dy[s], 0.0, dx[s])
        bottom[0].mark_host_diff_dirty()

    def _backward_weight_rows(self, top: Sequence[Blob],
                              bottom: Sequence[Blob], lo: int, hi: int) -> None:
        """Weight/bias gradient rows ``[lo, hi)``, each a full-batch sum.

        Each row is computed by its own fixed-shape ``gemv`` over the
        whole batch, so the value is independent of how rows are chunked
        across threads — this backward loop needs no reduction and is
        bitwise identical for any thread count.  (A single chunk-wide
        ``gemm`` would be faster but lets BLAS re-block the inner sum per
        chunk shape, breaking that invariance.)
        """
        x = bottom[0].flat_data.reshape(self.outer, self.inner)
        dy = top[0].flat_diff.reshape(self.outer, self.num_output)
        dweights = self.blobs[0].flat_diff.reshape(self.num_output, self.inner)
        dbias = self.blobs[1].flat_diff if self.bias_term else None
        for row in range(lo, hi):
            dy_row = np.ascontiguousarray(dy[:, row])
            blaslib.gemv(True, 1.0, x, dy_row, 1.0, dweights[row])
            if dbias is not None:
                dbias[row] += dy_row.sum()
        self.blobs[0].mark_host_diff_dirty()
        if dbias is not None:
            self.blobs[1].mark_host_diff_dirty()

    def backward_loops(self, top, propagate_down, bottom):
        """Two reduction-free loops: bottom grads over sample rows, weight
        grads over output rows (paper layers only privatize where a true
        reduction exists — the convolutional layers)."""
        from repro.framework.layer import LoopSpec

        loops = []
        if propagate_down[0]:
            loops.append(LoopSpec(
                space=self.outer,
                body=lambda lo, hi, grads: self._backward_data_chunk(
                    top, bottom, lo, hi
                ),
            ))
        loops.append(LoopSpec(
            space=self.num_output,
            body=lambda lo, hi, grads: self._backward_weight_rows(
                top, bottom, lo, hi
            ),
        ))
        return loops


@register_shape_rule("InnerProduct")
def _ip_shape_rule(spec, bottoms) -> RuleResult:
    """Symbolic mirror of :meth:`InnerProductLayer.reshape`."""
    num_output = int(spec.require("num_output"))
    axis = canonical_axis(spec, bottoms[0], int(spec.param("axis", 1)))
    shape = bottoms[0].shape
    inner = 1
    for dim in shape[axis:]:
        inner *= dim
    outer = 1
    for dim in shape[:axis]:
        outer *= dim
    param_shapes = [(num_output, inner)]
    if bool(spec.param("bias_term", True)):
        param_shapes.append((num_output,))
    return RuleResult(
        tops=[BlobInfo(tuple(shape[:axis]) + (num_output,))],
        forward_space=outer,
        param_shapes=param_shapes,
    )
