"""Accuracy layer: top-k classification accuracy over a batch.

Test-phase only (no backward).  Like the loss layers it reduces over the
batch, so chunks fill a per-sample hit scratch and the finalize hook folds
it in fixed order.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.framework.blob import DTYPE, Blob
from repro.framework.layer import (
    FootprintDecl,
    Layer,
    PerfDecl,
    register_layer,
)
from repro.framework.shape_inference import (
    BlobInfo,
    RuleResult,
    ShapeError,
    register_shape_rule,
)


@register_layer("Accuracy")
class AccuracyLayer(Layer):
    """Fraction of samples whose label is within the top-k predictions.

    Parameters (``accuracy_param``): ``top_k`` (default 1),
    ``ignore_label``.
    """

    exact_num_bottom = 2
    exact_num_top = 1

    write_footprint = FootprintDecl(scratch=("_hits", "_valid"))

    perf_decl = PerfDecl(
        float64=("forward_chunk",),
        allocs=("forward_chunk",),
        note=(
            "per-sample hit partials are float64 so the finalize fold is "
            "exact in any chunk order; the per-chunk index/mask vectors "
            "are O(chunk) int/bool temporaries, far below the pooling "
            "break-even"
        ),
    )

    def layer_setup(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        self.top_k = int(self.spec.param("top_k", 1))
        self.ignore_label = self.spec.param("ignore_label")
        if self.ignore_label is not None:
            self.ignore_label = int(self.ignore_label)

    def reshape(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        batch = bottom[0].shape[0]
        classes = bottom[0].count // batch
        if self.top_k > classes:
            raise ValueError(
                f"layer {self.name!r}: top_k {self.top_k} exceeds class "
                f"count {classes}"
            )
        top[0].reshape(())
        self._hits = np.zeros(batch, dtype=np.float64)
        self._valid = np.ones(batch, dtype=bool)

    def forward_space(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> int:
        return bottom[0].shape[0]

    def forward_chunk(
        self, bottom: Sequence[Blob], top: Sequence[Blob], lo: int, hi: int
    ) -> None:
        batch = bottom[0].shape[0]
        scores = bottom[0].flat_data.reshape(batch, -1)[lo:hi]
        labels = bottom[1].flat_data[lo:hi].astype(np.int64)
        if self.top_k == 1:
            predictions = scores.argmax(axis=1)
            hits = (predictions == labels).astype(np.float64)
        else:
            # Indices of the top-k scores per row (order irrelevant).
            topk = np.argpartition(-scores, self.top_k - 1, axis=1)[:, : self.top_k]
            hits = (topk == labels[:, None]).any(axis=1).astype(np.float64)
        valid = np.ones(hi - lo, dtype=bool)
        if self.ignore_label is not None:
            valid = labels != self.ignore_label
            hits = np.where(valid, hits, 0.0)
        self._hits[lo:hi] = hits
        self._valid[lo:hi] = valid

    def forward_finalize(
        self, bottom: Sequence[Blob], top: Sequence[Blob]
    ) -> None:
        valid = int(self._valid.sum())
        total = 0.0
        for s in range(bottom[0].shape[0]):
            total += self._hits[s]
        top[0].flat_data[0] = DTYPE(total / max(valid, 1))
        top[0].mark_host_data_dirty()

    def backward_chunk(self, *args, **kwargs) -> None:
        raise RuntimeError(
            f"layer {self.name!r}: Accuracy has no backward pass"
        )


@register_shape_rule("Accuracy", terminal_ok=True)
def _accuracy_shape_rule(spec, bottoms) -> RuleResult:
    if len(bottoms) != 2:
        raise ShapeError(
            f"layer {spec.name!r}: needs 2 bottoms (scores, labels), "
            f"got {len(bottoms)}"
        )
    batch = bottoms[0].shape[0] if bottoms[0].num_axes else 1
    classes = bottoms[0].count // max(batch, 1)
    top_k = int(spec.param("top_k", 1))
    if top_k > classes:
        raise ShapeError(
            f"layer {spec.name!r}: top_k {top_k} exceeds class count "
            f"{classes}"
        )
    return RuleResult(tops=[BlobInfo(())], forward_space=batch)
