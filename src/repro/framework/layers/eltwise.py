"""Eltwise layer: element-wise SUM / PROD / MAX over several bottoms."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.framework.blob import Blob
from repro.framework.layer import (
    FootprintDecl,
    Layer,
    PerfDecl,
    register_layer,
)
from repro.framework.shape_inference import (
    BlobInfo,
    RuleResult,
    ShapeError,
    register_shape_rule,
)


@register_layer("Eltwise")
class EltwiseLayer(Layer):
    """Element-wise combination of equally shaped bottoms.

    Parameters (``eltwise_param``): ``operation`` (``SUM`` default,
    ``PROD`` or ``MAX``) and, for SUM, per-bottom ``coeff`` values
    (default 1.0 each).
    """

    min_num_bottom = 2
    exact_num_top = 1

    write_footprint = FootprintDecl(scratch=("_argmax",))

    perf_decl = PerfDecl(
        allocs=("forward_chunk",),
        note=(
            "MAX mode stacks a variable-length bottom list before the "
            "argmax; np.stack over N operands has no fixed-geometry "
            "pooled equivalent"
        ),
    )

    def layer_setup(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        op = str(self.spec.param("operation", "SUM")).upper()
        if op not in ("SUM", "PROD", "MAX"):
            raise ValueError(f"layer {self.name!r}: unknown operation {op!r}")
        self.operation = op
        coeff = self.spec.param("coeff")
        if coeff is None:
            self.coeffs = [1.0] * len(bottom)
        else:
            coeffs = coeff if isinstance(coeff, list) else [coeff]
            if len(coeffs) != len(bottom):
                raise ValueError(
                    f"layer {self.name!r}: {len(coeffs)} coeffs for "
                    f"{len(bottom)} bottoms"
                )
            if op != "SUM":
                raise ValueError(
                    f"layer {self.name!r}: coeff only applies to SUM"
                )
            self.coeffs = [float(c) for c in coeffs]

    def reshape(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        for b in bottom[1:]:
            if b.shape != bottom[0].shape:
                raise ValueError(
                    f"layer {self.name!r}: bottoms disagree in shape "
                    f"({b.shape} vs {bottom[0].shape})"
                )
        top[0].reshape_like(bottom[0])
        if self.operation == "MAX":
            self._argmax = np.zeros(bottom[0].count, dtype=np.int32)

    def forward_space(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> int:
        return bottom[0].count

    def forward_chunk(
        self, bottom: Sequence[Blob], top: Sequence[Blob], lo: int, hi: int
    ) -> None:
        y = top[0].flat_data[lo:hi]
        if self.operation == "SUM":
            np.multiply(bottom[0].flat_data[lo:hi], self.coeffs[0], out=y)
            for b, c in zip(bottom[1:], self.coeffs[1:]):
                y += c * b.flat_data[lo:hi]
        elif self.operation == "PROD":
            np.copyto(y, bottom[0].flat_data[lo:hi])
            for b in bottom[1:]:
                y *= b.flat_data[lo:hi]
        else:  # MAX
            stacked = np.stack([b.flat_data[lo:hi] for b in bottom])
            arg = stacked.argmax(axis=0)
            self._argmax[lo:hi] = arg
            np.copyto(y, np.take_along_axis(stacked, arg[None], axis=0)[0])
        top[0].mark_host_data_dirty()

    def backward_chunk(
        self,
        top: Sequence[Blob],
        propagate_down: Sequence[bool],
        bottom: Sequence[Blob],
        lo: int,
        hi: int,
        param_grads: Sequence[np.ndarray],
    ) -> None:
        dy = top[0].flat_diff[lo:hi]
        for i, (b, prop) in enumerate(zip(bottom, propagate_down)):
            if not prop:
                continue
            dx = b.flat_diff[lo:hi]
            if self.operation == "SUM":
                np.multiply(dy, self.coeffs[i], out=dx)
            elif self.operation == "PROD":
                np.copyto(dx, dy)
                for j, other in enumerate(bottom):
                    if j != i:
                        dx *= other.flat_data[lo:hi]
            else:  # MAX: route to the winner only
                np.multiply(dy, self._argmax[lo:hi] == i, out=dx)
            b.mark_host_diff_dirty()


@register_shape_rule("Eltwise")
def _eltwise_shape_rule(spec, bottoms) -> RuleResult:
    op = str(spec.param("operation", "SUM")).upper()
    if op not in ("SUM", "PROD", "MAX"):
        raise ShapeError(f"layer {spec.name!r}: unknown operation {op!r}")
    for b in bottoms[1:]:
        if b.shape != bottoms[0].shape:
            raise ShapeError(
                f"layer {spec.name!r}: bottoms disagree in shape "
                f"({b.shape} vs {bottoms[0].shape})"
            )
    return RuleResult(
        tops=[BlobInfo(bottoms[0].shape, bottoms[0].dtype)],
        forward_space=bottoms[0].count,
    )
