"""Flatten layer: collapses all axes after the batch axis."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.framework.blob import Blob
from repro.framework.layer import FootprintDecl, Layer, register_layer
from repro.framework.shape_inference import (
    BlobInfo,
    RuleResult,
    canonical_axis,
    register_shape_rule,
)


@register_layer("Flatten")
class FlattenLayer(Layer):
    """Reshape ``(N, d1, d2, ...)`` to ``(N, d1*d2*...)``.

    Parameters: ``axis`` (default 1) — axes from ``axis`` on are
    collapsed.  Pure data movement; the coalesced space is the flat
    element range.
    """

    exact_num_bottom = 1
    exact_num_top = 1

    write_footprint = FootprintDecl()

    def layer_setup(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        self.axis = bottom[0].canonical_axis(int(self.spec.param("axis", 1)))

    def reshape(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        shape = bottom[0].shape
        flattened = 1
        for dim in shape[self.axis :]:
            flattened *= dim
        top[0].reshape(tuple(shape[: self.axis]) + (flattened,))

    def forward_space(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> int:
        return bottom[0].count

    def forward_chunk(
        self, bottom: Sequence[Blob], top: Sequence[Blob], lo: int, hi: int
    ) -> None:
        np.copyto(top[0].flat_data[lo:hi], bottom[0].flat_data[lo:hi])
        top[0].mark_host_data_dirty()

    def backward_chunk(
        self,
        top: Sequence[Blob],
        propagate_down: Sequence[bool],
        bottom: Sequence[Blob],
        lo: int,
        hi: int,
        param_grads: Sequence[np.ndarray],
    ) -> None:
        if not propagate_down[0]:
            return
        np.copyto(bottom[0].flat_diff[lo:hi], top[0].flat_diff[lo:hi])
        bottom[0].mark_host_diff_dirty()


@register_shape_rule("Flatten")
def _flatten_shape_rule(spec, bottoms) -> RuleResult:
    axis = canonical_axis(spec, bottoms[0], int(spec.param("axis", 1)))
    shape = bottoms[0].shape
    flattened = 1
    for dim in shape[axis:]:
        flattened *= dim
    return RuleResult(
        tops=[BlobInfo(tuple(shape[:axis]) + (flattened,), bottoms[0].dtype)],
        forward_space=bottoms[0].count,
    )
