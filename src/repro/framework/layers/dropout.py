"""Dropout layer with inverted scaling (Caffe semantics).

During training each element is zeroed with probability ``dropout_ratio``
and survivors are scaled by ``1 / (1 - ratio)``; at test time it is the
identity.  The mask for a whole batch is drawn *once per forward pass*
(in :meth:`reshape`, which the net invokes sequentially before the chunked
forward), so the parallel and sequential executions see the same mask —
another ingredient of convergence invariance for stochastic layers.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.framework.blob import DTYPE, Blob
from repro.framework.layers.neuron import NeuronLayer
from repro.framework.layer import (
    FootprintDecl,
    RNG_PER_FORWARD,
    RNGDecl,
    register_layer,
)
from repro.framework.shape_inference import (
    BlobInfo,
    RuleResult,
    ShapeError,
    register_shape_rule,
)


@register_layer("Dropout")
class DropoutLayer(NeuronLayer):
    """Inverted dropout.

    Parameters (``dropout_param``): ``dropout_ratio`` (default 0.5),
    ``seed`` (default 1).  Set :attr:`train_mode` to False for the
    identity (test-phase) behaviour (the net does this for TEST-phase
    construction before :meth:`setup` runs).
    """

    #: Phase switch; class-level default so it can be assigned before setup.
    train_mode = True

    # The mask is drawn in reshape() (sequential) and only *read* inside
    # the chunked loops, so no scratch entry is needed.
    write_footprint = FootprintDecl()

    # One whole-batch mask per forward pass, drawn in the sequential
    # reshape() prologue from an explicitly seeded generator — the draw
    # count and order are independent of thread count and chunking, which
    # is what lets detcheck certify stochastic nets.
    rng_provenance = RNGDecl(seed_params=("seed",), fallback="constant",
                             draws=RNG_PER_FORWARD)

    def layer_setup(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        self.ratio = float(self.spec.param("dropout_ratio", 0.5))
        if not 0.0 <= self.ratio < 1.0:
            raise ValueError(
                f"layer {self.name!r}: dropout_ratio must be in [0, 1), "
                f"got {self.ratio}"
            )
        self.scale = 1.0 / (1.0 - self.ratio)
        self._rng = np.random.default_rng(int(self.spec.param("seed", 1)))
        self._mask = np.zeros(0, dtype=DTYPE)

    def reshape(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        super().reshape(bottom, top)
        if self.train_mode:
            # One mask per forward pass, drawn sequentially.
            keep = self._rng.random(bottom[0].count) >= self.ratio
            self._mask = keep.astype(DTYPE) * DTYPE(self.scale)

    def forward_chunk(
        self, bottom: Sequence[Blob], top: Sequence[Blob], lo: int, hi: int
    ) -> None:
        x = bottom[0].flat_data[lo:hi]
        y = top[0].flat_data[lo:hi]
        if self.train_mode:
            np.multiply(x, self._mask[lo:hi], out=y)
        elif top[0] is not bottom[0]:
            np.copyto(y, x)
        top[0].mark_host_data_dirty()

    def backward_chunk(
        self,
        top: Sequence[Blob],
        propagate_down: Sequence[bool],
        bottom: Sequence[Blob],
        lo: int,
        hi: int,
        param_grads: Sequence[np.ndarray],
    ) -> None:
        if not propagate_down[0]:
            return
        dy = top[0].flat_diff[lo:hi]
        dx = bottom[0].flat_diff[lo:hi]
        if self.train_mode:
            np.multiply(dy, self._mask[lo:hi], out=dx)
        elif bottom[0] is not top[0]:
            np.copyto(dx, dy)
        bottom[0].mark_host_diff_dirty()


@register_shape_rule("Dropout", inplace_ok=True)
def _dropout_shape_rule(spec, bottoms) -> RuleResult:
    ratio = float(spec.param("dropout_ratio", 0.5))
    if not 0.0 <= ratio < 1.0:
        raise ShapeError(
            f"layer {spec.name!r}: dropout_ratio must be in [0, 1), "
            f"got {ratio}"
        )
    return RuleResult(
        tops=[BlobInfo(bottoms[0].shape, bottoms[0].dtype)],
        forward_space=bottoms[0].count,
    )
