"""Layer zoo.

Importing this package registers every layer type with the framework
registry (:func:`repro.framework.layer.create_layer`).  The set covers the
layers used by the paper's two networks (Data, Convolution, Pooling, ReLU,
LRN, InnerProduct, SoftmaxWithLoss, Accuracy) plus the common remainder of
the Caffe zoo needed for realistic DAGs (Sigmoid, TanH, Power, Dropout,
Flatten, Split, Concat, Eltwise, Softmax, EuclideanLoss, Input, MemoryData).
"""

from repro.framework.layers.accuracy import AccuracyLayer
from repro.framework.layers.concat import ConcatLayer
from repro.framework.layers.conv import ConvolutionLayer
from repro.framework.layers.data import DataLayer, InputLayer, MemoryDataLayer
from repro.framework.layers.dropout import DropoutLayer
from repro.framework.layers.eltwise import EltwiseLayer
from repro.framework.layers.flatten import FlattenLayer
from repro.framework.layers.fused import (
    FusedConvolutionLayer,
    FusedEltwiseReLU,
    FusedInnerProductReLU,
    FusedScaleBias,
)
from repro.framework.layers.inner_product import InnerProductLayer
from repro.framework.layers.loss import EuclideanLossLayer, SoftmaxWithLossLayer
from repro.framework.layers.lrn import LRNLayer
from repro.framework.layers.neuron import (
    AbsValLayer,
    BNLLLayer,
    ExpLayer,
    LogLayer,
    PowerLayer,
    ReLULayer,
    SigmoidLayer,
    TanHLayer,
)
from repro.framework.layers.scale import BiasLayer, ScaleLayer
from repro.framework.layers.pooling import PoolingLayer
from repro.framework.layers.softmax import SoftmaxLayer
from repro.framework.layers.split import SplitLayer

__all__ = [
    "AbsValLayer",
    "AccuracyLayer",
    "BNLLLayer",
    "BiasLayer",
    "ExpLayer",
    "LogLayer",
    "ScaleLayer",
    "ConcatLayer",
    "ConvolutionLayer",
    "DataLayer",
    "DropoutLayer",
    "EltwiseLayer",
    "EuclideanLossLayer",
    "FlattenLayer",
    "FusedConvolutionLayer",
    "FusedEltwiseReLU",
    "FusedInnerProductReLU",
    "FusedScaleBias",
    "InnerProductLayer",
    "InputLayer",
    "LRNLayer",
    "MemoryDataLayer",
    "PoolingLayer",
    "PowerLayer",
    "ReLULayer",
    "SigmoidLayer",
    "SoftmaxLayer",
    "SoftmaxWithLossLayer",
    "SplitLayer",
    "TanHLayer",
]
