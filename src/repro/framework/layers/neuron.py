"""Element-wise ("neuron") layers: ReLU, Sigmoid, TanH, Power.

Neuron layers apply the same scalar function to every element, so their
coalesced iteration space is the *entire* flat element range — the fully
coalesced case of Algorithm 4 (``k = N``), which gives the scheduler the
finest work units the coarse-grain approach allows.  All of them support
in-place operation (top blob aliasing the bottom blob), as Caffe's do.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.framework.blob import Blob
from repro.framework.layer import FootprintDecl, Layer, register_layer
from repro.framework.shape_inference import (
    BlobInfo,
    RuleResult,
    register_shape_rule,
)


class NeuronLayer(Layer):
    """Base for element-wise layers: top has the bottom's shape."""

    exact_num_bottom = 1
    exact_num_top = 1

    def reshape(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        if top[0] is not bottom[0]:
            top[0].reshape_like(bottom[0])

    def forward_space(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> int:
        return bottom[0].count


@register_layer("ReLU")
class ReLULayer(NeuronLayer):
    """Rectified linear unit: ``y = max(x, 0) + negative_slope * min(x, 0)``."""

    write_footprint = FootprintDecl()

    def layer_setup(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        self.negative_slope = float(self.spec.param("negative_slope", 0.0))

    def forward_chunk(
        self, bottom: Sequence[Blob], top: Sequence[Blob], lo: int, hi: int
    ) -> None:
        x = bottom[0].flat_data[lo:hi]
        y = top[0].flat_data[lo:hi]
        if self.negative_slope == 0.0:
            np.maximum(x, 0.0, out=y)
        else:
            np.copyto(y, np.where(x > 0, x, self.negative_slope * x))
        top[0].mark_host_data_dirty()

    def backward_chunk(
        self,
        top: Sequence[Blob],
        propagate_down: Sequence[bool],
        bottom: Sequence[Blob],
        lo: int,
        hi: int,
        param_grads: Sequence[np.ndarray],
    ) -> None:
        if not propagate_down[0]:
            return
        # In-place safe: for slope 0 the (x > 0) mask is identical whether x
        # is the original input or the rectified output.
        x = bottom[0].flat_data[lo:hi]
        dy = top[0].flat_diff[lo:hi]
        dx = bottom[0].flat_diff[lo:hi]
        if self.negative_slope == 0.0:
            np.multiply(dy, x > 0, out=dx)
        else:
            np.copyto(dx, dy * np.where(x > 0, 1.0, self.negative_slope))
        bottom[0].mark_host_diff_dirty()


@register_layer("Sigmoid")
class SigmoidLayer(NeuronLayer):
    """Logistic sigmoid: ``y = 1 / (1 + exp(-x))``."""

    write_footprint = FootprintDecl()

    def forward_chunk(
        self, bottom: Sequence[Blob], top: Sequence[Blob], lo: int, hi: int
    ) -> None:
        x = bottom[0].flat_data[lo:hi]
        y = top[0].flat_data[lo:hi]
        # Numerically stable split by sign.
        np.copyto(y, np.where(x >= 0, 1.0 / (1.0 + np.exp(-np.abs(x))),
                              np.exp(-np.abs(x)) / (1.0 + np.exp(-np.abs(x)))))
        top[0].mark_host_data_dirty()

    def backward_chunk(
        self,
        top: Sequence[Blob],
        propagate_down: Sequence[bool],
        bottom: Sequence[Blob],
        lo: int,
        hi: int,
        param_grads: Sequence[np.ndarray],
    ) -> None:
        if not propagate_down[0]:
            return
        y = top[0].flat_data[lo:hi]
        dy = top[0].flat_diff[lo:hi]
        dx = bottom[0].flat_diff[lo:hi]
        np.copyto(dx, dy * y * (1.0 - y))
        bottom[0].mark_host_diff_dirty()


@register_layer("TanH")
class TanHLayer(NeuronLayer):
    """Hyperbolic tangent."""

    write_footprint = FootprintDecl()

    def forward_chunk(
        self, bottom: Sequence[Blob], top: Sequence[Blob], lo: int, hi: int
    ) -> None:
        np.tanh(bottom[0].flat_data[lo:hi], out=top[0].flat_data[lo:hi])
        top[0].mark_host_data_dirty()

    def backward_chunk(
        self,
        top: Sequence[Blob],
        propagate_down: Sequence[bool],
        bottom: Sequence[Blob],
        lo: int,
        hi: int,
        param_grads: Sequence[np.ndarray],
    ) -> None:
        if not propagate_down[0]:
            return
        y = top[0].flat_data[lo:hi]
        dy = top[0].flat_diff[lo:hi]
        dx = bottom[0].flat_diff[lo:hi]
        np.copyto(dx, dy * (1.0 - y * y))
        bottom[0].mark_host_diff_dirty()


@register_layer("Power")
class PowerLayer(NeuronLayer):
    """``y = (shift + scale * x) ** power`` (Caffe PowerLayer)."""

    write_footprint = FootprintDecl()

    def layer_setup(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        self.power = float(self.spec.param("power", 1.0))
        self.scale = float(self.spec.param("scale", 1.0))
        self.shift = float(self.spec.param("shift", 0.0))

    def forward_chunk(
        self, bottom: Sequence[Blob], top: Sequence[Blob], lo: int, hi: int
    ) -> None:
        x = bottom[0].flat_data[lo:hi]
        y = top[0].flat_data[lo:hi]
        base = self.shift + self.scale * x
        if self.power == 1.0:
            np.copyto(y, base)
        else:
            np.copyto(y, np.power(base, self.power))
        top[0].mark_host_data_dirty()

    def backward_chunk(
        self,
        top: Sequence[Blob],
        propagate_down: Sequence[bool],
        bottom: Sequence[Blob],
        lo: int,
        hi: int,
        param_grads: Sequence[np.ndarray],
    ) -> None:
        if not propagate_down[0]:
            return
        x = bottom[0].flat_data[lo:hi]
        dy = top[0].flat_diff[lo:hi]
        dx = bottom[0].flat_diff[lo:hi]
        if self.power == 1.0:
            np.copyto(dx, dy * self.scale)
        else:
            base = self.shift + self.scale * x
            # d/dx (base^p) = p * scale * base^(p-1)
            np.copyto(dx, dy * self.power * self.scale
                      * np.power(base, self.power - 1.0))
        bottom[0].mark_host_diff_dirty()


@register_layer("AbsVal")
class AbsValLayer(NeuronLayer):
    """Absolute value: ``y = |x|``."""

    write_footprint = FootprintDecl()

    def forward_chunk(
        self, bottom: Sequence[Blob], top: Sequence[Blob], lo: int, hi: int
    ) -> None:
        np.abs(bottom[0].flat_data[lo:hi], out=top[0].flat_data[lo:hi])
        top[0].mark_host_data_dirty()

    def backward_chunk(
        self,
        top: Sequence[Blob],
        propagate_down: Sequence[bool],
        bottom: Sequence[Blob],
        lo: int,
        hi: int,
        param_grads: Sequence[np.ndarray],
    ) -> None:
        if not propagate_down[0]:
            return
        x = bottom[0].flat_data[lo:hi]
        dy = top[0].flat_diff[lo:hi]
        np.copyto(bottom[0].flat_diff[lo:hi], dy * np.sign(x))
        bottom[0].mark_host_diff_dirty()


@register_layer("Exp")
class ExpLayer(NeuronLayer):
    """``y = gamma^(shift + scale * x)`` (Caffe ExpLayer; default e^x)."""

    write_footprint = FootprintDecl()

    def layer_setup(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        self.base = float(self.spec.param("base", -1.0))  # -1 means e
        self.scale = float(self.spec.param("scale", 1.0))
        self.shift = float(self.spec.param("shift", 0.0))
        if self.base != -1.0 and self.base <= 0:
            raise ValueError(
                f"layer {self.name!r}: base must be positive (or -1 for e)"
            )
        log_base = 1.0 if self.base == -1.0 else np.log(self.base)
        self.inner_scale = log_base * self.scale
        self.inner_shift = log_base * self.shift

    def forward_chunk(
        self, bottom: Sequence[Blob], top: Sequence[Blob], lo: int, hi: int
    ) -> None:
        x = bottom[0].flat_data[lo:hi]
        np.exp(self.inner_shift + self.inner_scale * x,
               out=top[0].flat_data[lo:hi])
        top[0].mark_host_data_dirty()

    def backward_chunk(
        self,
        top: Sequence[Blob],
        propagate_down: Sequence[bool],
        bottom: Sequence[Blob],
        lo: int,
        hi: int,
        param_grads: Sequence[np.ndarray],
    ) -> None:
        if not propagate_down[0]:
            return
        y = top[0].flat_data[lo:hi]
        dy = top[0].flat_diff[lo:hi]
        np.copyto(bottom[0].flat_diff[lo:hi], dy * y * self.inner_scale)
        bottom[0].mark_host_diff_dirty()


@register_layer("Log")
class LogLayer(NeuronLayer):
    """``y = log_base(shift + scale * x)`` (Caffe LogLayer; default ln)."""

    write_footprint = FootprintDecl()

    def layer_setup(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        self.base = float(self.spec.param("base", -1.0))
        self.scale = float(self.spec.param("scale", 1.0))
        self.shift = float(self.spec.param("shift", 0.0))
        if self.base != -1.0 and self.base <= 0:
            raise ValueError(
                f"layer {self.name!r}: base must be positive (or -1 for e)"
            )
        self.denominator = 1.0 if self.base == -1.0 else np.log(self.base)

    def forward_chunk(
        self, bottom: Sequence[Blob], top: Sequence[Blob], lo: int, hi: int
    ) -> None:
        x = bottom[0].flat_data[lo:hi]
        np.copyto(top[0].flat_data[lo:hi],
                  np.log(self.shift + self.scale * x) / self.denominator)
        top[0].mark_host_data_dirty()

    def backward_chunk(
        self,
        top: Sequence[Blob],
        propagate_down: Sequence[bool],
        bottom: Sequence[Blob],
        lo: int,
        hi: int,
        param_grads: Sequence[np.ndarray],
    ) -> None:
        if not propagate_down[0]:
            return
        x = bottom[0].flat_data[lo:hi]
        dy = top[0].flat_diff[lo:hi]
        np.copyto(
            bottom[0].flat_diff[lo:hi],
            dy * self.scale / ((self.shift + self.scale * x)
                               * self.denominator),
        )
        bottom[0].mark_host_diff_dirty()


@register_layer("BNLL")
class BNLLLayer(NeuronLayer):
    """Binomial normal log likelihood: ``y = log(1 + exp(x))``
    (softplus), computed stably for large |x|."""

    write_footprint = FootprintDecl()

    def forward_chunk(
        self, bottom: Sequence[Blob], top: Sequence[Blob], lo: int, hi: int
    ) -> None:
        x = bottom[0].flat_data[lo:hi]
        # log(1 + e^x) = max(x, 0) + log(1 + e^-|x|)
        np.copyto(top[0].flat_data[lo:hi],
                  np.maximum(x, 0.0) + np.log1p(np.exp(-np.abs(x))))
        top[0].mark_host_data_dirty()

    def backward_chunk(
        self,
        top: Sequence[Blob],
        propagate_down: Sequence[bool],
        bottom: Sequence[Blob],
        lo: int,
        hi: int,
        param_grads: Sequence[np.ndarray],
    ) -> None:
        if not propagate_down[0]:
            return
        x = bottom[0].flat_data[lo:hi]
        dy = top[0].flat_diff[lo:hi]
        sig = np.where(x >= 0, 1.0 / (1.0 + np.exp(-np.abs(x))),
                       np.exp(-np.abs(x)) / (1.0 + np.exp(-np.abs(x))))
        np.copyto(bottom[0].flat_diff[lo:hi], dy * sig)
        bottom[0].mark_host_diff_dirty()


@register_shape_rule(
    "ReLU", "Sigmoid", "TanH", "Power", "AbsVal", "Exp", "Log", "BNLL",
    inplace_ok=True,
)
def _neuron_shape_rule(spec, bottoms) -> RuleResult:
    """Element-wise layers: top mirrors the bottom, fully coalesced space."""
    return RuleResult(
        tops=[BlobInfo(bottoms[0].shape, bottoms[0].dtype)],
        forward_space=bottoms[0].count,
    )
