"""Concat layer: joins blobs along one axis (default: channels)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.framework.blob import Blob
from repro.framework.layer import FootprintDecl, Layer, register_layer
from repro.framework.shape_inference import (
    BlobInfo,
    RuleResult,
    ShapeError,
    canonical_axis,
    register_shape_rule,
)


@register_layer("Concat")
class ConcatLayer(Layer):
    """Concatenate bottoms along ``axis`` (default 1).

    The coalesced space is the outer extent before the concat axis (the
    batch, for the default), so one iteration assembles one sample's
    concatenated block.
    """

    min_num_bottom = 1
    exact_num_top = 1

    write_footprint = FootprintDecl()

    def layer_setup(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        self.axis = bottom[0].canonical_axis(int(self.spec.param("axis", 1)))

    def reshape(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        ref = bottom[0].shape
        concat_total = 0
        for b in bottom:
            shape = b.shape
            if len(shape) != len(ref):
                raise ValueError(
                    f"layer {self.name!r}: rank mismatch {shape} vs {ref}"
                )
            for ax, (da, db) in enumerate(zip(shape, ref)):
                if ax != self.axis and da != db:
                    raise ValueError(
                        f"layer {self.name!r}: non-concat axis {ax} differs "
                        f"({da} vs {db})"
                    )
            concat_total += shape[self.axis]
        out_shape = list(ref)
        out_shape[self.axis] = concat_total
        top[0].reshape(tuple(out_shape))
        self.outer = 1
        for dim in ref[: self.axis]:
            self.outer *= dim
        self._bottom_inner = [
            b.count // self.outer for b in bottom
        ]
        self._top_inner = top[0].count // self.outer

    def forward_space(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> int:
        return self.outer

    def forward_chunk(
        self, bottom: Sequence[Blob], top: Sequence[Blob], lo: int, hi: int
    ) -> None:
        out = top[0].flat_data.reshape(self.outer, self._top_inner)[lo:hi]
        offset = 0
        for b, inner in zip(bottom, self._bottom_inner):
            src = b.flat_data.reshape(self.outer, inner)[lo:hi]
            out[:, offset : offset + inner] = src
            offset += inner
        top[0].mark_host_data_dirty()

    def backward_chunk(
        self,
        top: Sequence[Blob],
        propagate_down: Sequence[bool],
        bottom: Sequence[Blob],
        lo: int,
        hi: int,
        param_grads: Sequence[np.ndarray],
    ) -> None:
        dtop = top[0].flat_diff.reshape(self.outer, self._top_inner)[lo:hi]
        offset = 0
        for b, inner, prop in zip(bottom, self._bottom_inner, propagate_down):
            if prop:
                dst = b.flat_diff.reshape(self.outer, inner)[lo:hi]
                np.copyto(dst, dtop[:, offset : offset + inner])
                b.mark_host_diff_dirty()
            offset += inner


@register_shape_rule("Concat")
def _concat_shape_rule(spec, bottoms) -> RuleResult:
    axis = canonical_axis(spec, bottoms[0], int(spec.param("axis", 1)))
    ref = bottoms[0].shape
    concat_total = 0
    for b in bottoms:
        if b.num_axes != len(ref):
            raise ShapeError(
                f"layer {spec.name!r}: rank mismatch {b.shape} vs {ref}"
            )
        for ax, (da, db) in enumerate(zip(b.shape, ref)):
            if ax != axis and da != db:
                raise ShapeError(
                    f"layer {spec.name!r}: non-concat axis {ax} differs "
                    f"({da} vs {db})"
                )
        concat_total += b.shape[axis]
    out_shape = list(ref)
    out_shape[axis] = concat_total
    outer = 1
    for dim in ref[:axis]:
        outer *= dim
    return RuleResult(
        tops=[BlobInfo(tuple(out_shape), bottoms[0].dtype)],
        forward_space=outer,
    )
