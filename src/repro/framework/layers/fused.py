"""Fused layers emitted by the graph compiler's fusion pass.

Each class here executes an elementwise *chain* — a primary layer plus
the Bias/Scale/ReLU layers :func:`repro.compiler.fuse.fuse_spec`
absorbed into it — in a single traversal of the coalesced iteration
space, forward and backward.  The chunk protocol is unchanged: the
epilogue of iteration range ``[lo, hi)`` touches exactly the top rows
that range owns, so every analyzer (footprint, netcheck, detcheck,
plancheck) sees a fused layer as just another layer.

Bitwise parity with the unfused chain is a design invariant, not an
accident:

* the ReLU epilogue applies the identical ``np.maximum(y, 0.0)`` the
  standalone layer applies, and the backward mask ``y > 0`` equals the
  standalone ``x > 0`` for slope-0 ReLU whether or not the original was
  in-place;
* absorbed Bias/Scale middles are executed by *real*
  :class:`~repro.framework.layers.scale.BiasLayer` /
  :class:`~repro.framework.layers.scale.ScaleLayer` instances built
  from the absorbed spec, so their arithmetic (including the float64
  channel reductions) is byte-for-byte the standalone code;
* a Scale middle's coefficient gradient needs the *pre-scale* primary
  output, which fusion overwrites — so the forward pass stashes it in
  the declared ``_prescale`` scratch (chunk-disjoint rows) and the
  backward channel loop reads the stash where the standalone layer
  would read its bottom blob.

Backward loop order is part of the contract: the ReLU mask runs before
any loop that reads the top diff, and a Scale middle's channel
reduction runs before the in-place rescale that destroys the
un-rescaled diff.
"""

from __future__ import annotations

import copy
from typing import List, Optional, Sequence

import numpy as np

from repro.framework.blob import DTYPE, Blob
from repro.framework.layer import (
    FootprintDecl,
    LoopSpec,
    REDUCTION,
    create_layer,
    register_layer,
)
from repro.framework.layers.conv import ConvolutionLayer, _conv_shape_rule
from repro.framework.layers.eltwise import EltwiseLayer, _eltwise_shape_rule
from repro.framework.layers.inner_product import (
    InnerProductLayer,
    _ip_shape_rule,
)
from repro.framework.layers.scale import BiasLayer, ScaleLayer, _scale_shape_rule
from repro.framework.net_spec import LayerSpec
from repro.framework.shape_inference import (
    RuleResult,
    infer_layer,
    register_shape_rule,
)


class _FlatSource:
    """Adapter lending a plain ndarray the one Blob attribute the scale
    channel-gradient helper reads (``flat_data``)."""

    __slots__ = ("flat_data",)

    def __init__(self, array: np.ndarray) -> None:
        self.flat_data = array.reshape(-1)


def _middle_layer_spec(raw: dict, top_name: str) -> LayerSpec:
    """Reconstruct the absorbed middle layer's spec, bound in-place on
    the fused top so it reads and writes the primary's output blob."""
    return LayerSpec(
        name=raw["name"],
        type=raw["type"],
        bottoms=[top_name],
        tops=[top_name],
        params=copy.deepcopy(raw.get("params") or {}),
    )


class _MiddleHost:
    """Mixin managing a lazily built Bias/Scale middle layer.

    The middle is constructed on first :meth:`reshape` (the primary's
    top has its final shape by then) and its parameter blobs are
    appended to ``self.blobs`` — the enclosing ``Net`` collects
    learnable parameters after every layer's setup, so the middle's
    gamma/beta train exactly like the standalone layer's.
    """

    _middle = None

    def _middle_raw(self) -> Optional[dict]:
        return self.spec.param("fused_middle")

    def _ensure_middle(self, top: Sequence[Blob]) -> None:
        raw = self._middle_raw()
        if raw is None:
            return
        if self._middle is None:
            mid = create_layer(_middle_layer_spec(raw, self.spec.tops[0]))
            mid.setup(list(top), list(top))
            self._middle = mid
            self.blobs = list(self.blobs) + list(mid.blobs)
        else:
            self._middle.reshape(top, top)


@register_layer("FusedConv")
class FusedConvolutionLayer(_MiddleHost, ConvolutionLayer):
    """Convolution with an absorbed Bias/Scale middle and/or ReLU tail.

    Spec parameters on top of ``Convolution``'s: ``fused`` (names of
    the absorbed layers, for reporting), ``fused_relu`` (bool), and
    ``fused_middle`` (``{"name", "type", "params"}`` or absent).
    """

    write_footprint = FootprintDecl(
        backward=REDUCTION, reduction_params=(0, 1), scratch=("_prescale",)
    )

    def layer_setup(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        super().layer_setup(bottom, top)
        self._num_primary_blobs = len(self.blobs)
        self._fused_relu = bool(self.spec.param("fused_relu", False))
        self._middle = None
        self._prescale = None

    def reshape(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        super().reshape(bottom, top)
        self._ensure_middle(top)
        if isinstance(self._middle, ScaleLayer):
            n = top[0].shape[0]
            row = top[0].count // n
            if self._prescale is None or self._prescale.shape != (n, row):
                self._prescale = np.zeros((n, row), dtype=DTYPE)

    def footprint(self) -> FootprintDecl:
        # The inherited clip is against len(self.blobs), which now also
        # counts the middle's parameters; only the primary's weight/bias
        # go through the privatized reduction.
        decl = self.write_footprint
        primary = getattr(self, "_num_primary_blobs", len(self.blobs))
        clipped = tuple(i for i in decl.reduction_params if i < primary)
        if clipped == decl.reduction_params:
            return decl
        return FootprintDecl(
            forward=decl.forward, backward=decl.backward,
            reduction_params=clipped, scratch=decl.scratch,
        )

    # -- forward -------------------------------------------------------
    def forward_chunk(
        self, bottom: Sequence[Blob], top: Sequence[Blob], lo: int, hi: int
    ) -> None:
        super().forward_chunk(bottom, top, lo, hi)
        if self._middle is not None:
            if self._prescale is not None:
                n = top[0].shape[0]
                self._prescale[lo:hi] = top[0].flat_data.reshape(n, -1)[lo:hi]
            self._middle.forward_chunk(top, top, lo, hi)
        if self._fused_relu:
            self._relu_rows(top, lo, hi)

    def _relu_rows(self, top: Sequence[Blob], lo: int, hi: int) -> None:
        n = top[0].shape[0]
        y = top[0].flat_data.reshape(n, -1)[lo:hi]
        np.maximum(y, 0.0, out=y)
        top[0].mark_host_data_dirty()

    # -- backward ------------------------------------------------------
    def _relu_mask_chunk(self, top: Sequence[Blob], lo: int, hi: int) -> None:
        dy = top[0].flat_diff[lo:hi]
        y = top[0].flat_data[lo:hi]
        np.multiply(dy, y > 0, out=dy)
        top[0].mark_host_diff_dirty()

    def _middle_bias_channels(self, top, lo: int, hi: int) -> None:
        self._middle._backward_param_channels(top, lo, hi)

    def _middle_scale_channels(self, top, lo: int, hi: int) -> None:
        # The standalone Scale layer reads its bottom (the pre-scale
        # conv output) here; fusion overwrote it, so read the stash.
        source = _FlatSource(self._prescale)
        self._middle._backward_param_channels(top, [source], lo, hi)

    def _middle_rescale_rows(self, top, lo: int, hi: int) -> None:
        # dy *= gamma, in place (the standalone layer writes the same
        # product into the conv top's separate diff buffer).
        self._middle._backward_data_chunk(top, top, lo, hi)

    def backward_loops(self, top, propagate_down, bottom) -> List[LoopSpec]:
        loops: List[LoopSpec] = []
        if self._fused_relu:
            loops.append(LoopSpec(
                space=top[0].count,
                body=lambda lo, hi, grads: self._relu_mask_chunk(top, lo, hi),
            ))
        mid = self._middle
        if isinstance(mid, ScaleLayer):
            # Channel reduction first: the rescale below destroys the
            # un-rescaled diff the dgamma/dbeta sums need.
            loops.append(LoopSpec(
                space=mid.channels,
                body=lambda lo, hi, grads: self._middle_scale_channels(
                    top, lo, hi),
            ))
            loops.append(LoopSpec(
                space=mid.outer,
                body=lambda lo, hi, grads: self._middle_rescale_rows(
                    top, lo, hi),
            ))
        elif mid is not None:
            loops.append(LoopSpec(
                space=mid.channels,
                body=lambda lo, hi, grads: self._middle_bias_channels(
                    top, lo, hi),
            ))
        space = self.backward_space(top, bottom)
        batch = bottom[0].shape[0]
        loops.append(LoopSpec(
            space=space,
            body=lambda lo, hi, grads: self.backward_chunk(
                top, propagate_down, bottom, lo, hi, grads),
            reduction=True,
            grad_targets=tuple(
                blob.flat_diff
                for blob in self.blobs[:self._num_primary_blobs]
            ),
            block=self.grad_block(space, batch),
        ))
        return loops


@register_layer("FusedInnerProductReLU")
class FusedInnerProductReLU(InnerProductLayer):
    """InnerProduct with the downstream ReLU absorbed into its pass."""

    write_footprint = FootprintDecl()

    def forward_chunk(
        self, bottom: Sequence[Blob], top: Sequence[Blob], lo: int, hi: int
    ) -> None:
        super().forward_chunk(bottom, top, lo, hi)
        y = top[0].flat_data.reshape(self.outer, self.num_output)[lo:hi]
        np.maximum(y, 0.0, out=y)
        top[0].mark_host_data_dirty()

    def _relu_mask_chunk(self, top: Sequence[Blob], lo: int, hi: int) -> None:
        dy = top[0].flat_diff[lo:hi]
        y = top[0].flat_data[lo:hi]
        np.multiply(dy, y > 0, out=dy)
        top[0].mark_host_diff_dirty()

    def backward_loops(self, top, propagate_down, bottom) -> List[LoopSpec]:
        # Mask first: the weight-row loop reads every sample's dy.
        loops: List[LoopSpec] = [LoopSpec(
            space=top[0].count,
            body=lambda lo, hi, grads: self._relu_mask_chunk(top, lo, hi),
        )]
        loops.extend(super().backward_loops(top, propagate_down, bottom))
        return loops


@register_layer("FusedEltwiseReLU")
class FusedEltwiseReLU(EltwiseLayer):
    """Eltwise SUM/PROD/MAX with the downstream ReLU absorbed.

    Safe for every operation: the MAX argmax is taken pre-ReLU exactly
    as the standalone pair computes it, and the backward pass reads
    only the bottoms' data and the argmax scratch — never the top data
    the ReLU overwrote.
    """

    write_footprint = FootprintDecl(scratch=("_argmax",))

    def forward_chunk(
        self, bottom: Sequence[Blob], top: Sequence[Blob], lo: int, hi: int
    ) -> None:
        super().forward_chunk(bottom, top, lo, hi)
        y = top[0].flat_data[lo:hi]
        np.maximum(y, 0.0, out=y)
        top[0].mark_host_data_dirty()

    def _relu_mask_chunk(self, top: Sequence[Blob], lo: int, hi: int) -> None:
        dy = top[0].flat_diff[lo:hi]
        y = top[0].flat_data[lo:hi]
        np.multiply(dy, y > 0, out=dy)
        top[0].mark_host_diff_dirty()

    def backward_loops(self, top, propagate_down, bottom) -> List[LoopSpec]:
        loops: List[LoopSpec] = [LoopSpec(
            space=top[0].count,
            body=lambda lo, hi, grads: self._relu_mask_chunk(top, lo, hi),
        )]
        loops.extend(super().backward_loops(top, propagate_down, bottom))
        return loops


@register_layer("FusedScaleBias")
class FusedScaleBias(_MiddleHost, ScaleLayer):
    """Scale with the downstream Bias layer absorbed into its pass."""

    write_footprint = FootprintDecl()

    def layer_setup(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        super().layer_setup(bottom, top)
        self._num_primary_blobs = len(self.blobs)
        self._middle = None

    def reshape(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        super().reshape(bottom, top)
        self._ensure_middle(top)

    def forward_chunk(
        self, bottom: Sequence[Blob], top: Sequence[Blob], lo: int, hi: int
    ) -> None:
        super().forward_chunk(bottom, top, lo, hi)
        self._middle.forward_chunk(top, top, lo, hi)

    def _middle_bias_channels(self, top, lo: int, hi: int) -> None:
        self._middle._backward_param_channels(top, lo, hi)

    def backward_loops(self, top, propagate_down, bottom) -> List[LoopSpec]:
        # The absorbed bias's channel sums read the same top diff the
        # scale loops read (and never write), so order is free; keep
        # the unfused net's bias-then-scale order regardless.
        loops: List[LoopSpec] = [LoopSpec(
            space=self._middle.channels,
            body=lambda lo, hi, grads: self._middle_bias_channels(
                top, lo, hi),
        )]
        loops.extend(super().backward_loops(top, propagate_down, bottom))
        return loops


# ---------------------------------------------------------------------------
# shape-inference rules: delegate to the primaries, append middle params
# ---------------------------------------------------------------------------
def _middle_param_shapes(spec, base: RuleResult) -> list:
    raw = spec.param("fused_middle")
    if not raw:
        return []
    mid_spec = _middle_layer_spec(raw, spec.tops[0] if spec.tops else "x")
    return infer_layer(mid_spec, [base.tops[0]]).param_shapes


@register_shape_rule("FusedConv")
def _fused_conv_shape_rule(spec, bottoms) -> RuleResult:
    base = _conv_shape_rule(spec, bottoms)
    base.param_shapes = list(base.param_shapes) + _middle_param_shapes(
        spec, base)
    return base


@register_shape_rule("FusedInnerProductReLU")
def _fused_ip_shape_rule(spec, bottoms) -> RuleResult:
    return _ip_shape_rule(spec, bottoms)


@register_shape_rule("FusedEltwiseReLU")
def _fused_eltwise_shape_rule(spec, bottoms) -> RuleResult:
    return _eltwise_shape_rule(spec, bottoms)


@register_shape_rule("FusedScaleBias")
def _fused_scale_bias_shape_rule(spec, bottoms) -> RuleResult:
    base = _scale_shape_rule(spec, bottoms)
    base.param_shapes = list(base.param_shapes) + _middle_param_shapes(
        spec, base)
    return base
