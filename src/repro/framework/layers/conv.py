"""Convolution layer, lowered to im2col + gemm per sample.

The coarse-grain iteration space is the batch dimension ``S``: one
iteration unfolds one image into a column matrix and multiplies it against
the filter bank — the exact per-sample work unit the paper assigns to a
thread chunk for the conv1/conv2/conv3 layers.  The column scratch buffer
comes from the per-thread pool in :mod:`repro.compiler.scratch`, so
concurrent chunks never share scratch (the "object privatization" of
Algorithm 4, line 2) and the steady state allocates nothing per call.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro import blaslib
from repro.blaslib.im2col import conv_out_size
from repro.compiler.scratch import scratch_buffer
from repro.framework.blob import DTYPE, Blob
from repro.framework.fillers import FillerSpec, fill, stable_seed
from repro.framework.layer import (
    FootprintDecl,
    Layer,
    PerfDecl,
    REDUCTION,
    RNGDecl,
    register_layer,
)
from repro.framework.shape_inference import (
    NOTE_DROPPED_PIXELS,
    BlobInfo,
    RuleResult,
    ShapeError,
    register_shape_rule,
    require_axes,
)


def _pair(spec, base: str, default=None) -> tuple[int, int]:
    """Resolve Caffe's ``kernel_size`` vs ``kernel_h``/``kernel_w`` style
    parameters into an ``(h, w)`` pair."""
    h = spec.param(f"{base}_h")
    w = spec.param(f"{base}_w")
    if (h is None) != (w is None):
        raise ValueError(
            f"layer {spec.name!r}: {base}_h and {base}_w must be given together"
        )
    if h is not None:
        return int(h), int(w)
    size = spec.param(base if base != "kernel" else "kernel_size", default)
    if size is None:
        raise ValueError(f"layer {spec.name!r}: missing {base} size")
    return int(size), int(size)


@register_layer("Convolution")
class ConvolutionLayer(Layer):
    """2-D convolution with optional bias.

    Parameters (``convolution_param``): ``num_output``, ``kernel_size`` or
    ``kernel_h``/``kernel_w``, ``stride`` (default 1), ``pad`` (default 0),
    ``bias_term`` (default true), ``weight_filler``, ``bias_filler``,
    ``group`` (default 1).
    """

    exact_num_bottom = 1
    exact_num_top = 1

    # Backward accumulates dW (and db) across samples -> privatized
    # reduction over both param blobs; footprint() drops the bias index
    # automatically when bias_term is off.
    write_footprint = FootprintDecl(
        backward=REDUCTION, reduction_params=(0, 1)
    )

    rng_provenance = RNGDecl(seed_params=("filler_seed",),
                             fallback="stable_digest")

    perf_decl = PerfDecl(
        loops=("forward_chunk", "backward_chunk"),
        note=(
            "one im2col + gemm per coalesced iteration (sample x group) "
            "is the chunking design, priced as segments dispatch by the "
            "cost model; the column buffers come from the scratch pool"
        ),
    )

    def layer_setup(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        spec = self.spec
        self.num_output = int(spec.require("num_output"))
        self.kernel_h, self.kernel_w = _pair(spec, "kernel")
        self.stride_h, self.stride_w = _pair(spec, "stride", default=1)
        self.pad_h, self.pad_w = _pair(spec, "pad", default=0)
        self.group = int(spec.param("group", 1))
        self.bias_term = bool(spec.param("bias_term", True))

        if bottom[0].num_axes != 4:
            raise ValueError(
                f"layer {self.name!r}: convolution needs a 4-d bottom, got "
                f"shape {bottom[0].shape}"
            )
        channels = bottom[0].shape[1]
        if self.num_output % self.group or channels % self.group:
            raise ValueError(
                f"layer {self.name!r}: group {self.group} must divide both "
                f"channels {channels} and num_output {self.num_output}"
            )
        self.channels = channels

        weight_shape = (
            self.num_output,
            channels // self.group,
            self.kernel_h,
            self.kernel_w,
        )
        weights = Blob(weight_shape, name=f"{self.name}.weights")
        rng = self._filler_rng()
        fill(weights, _filler_spec(self.spec.param("weight_filler")), rng)
        self.blobs = [weights]
        if self.bias_term:
            bias = Blob((self.num_output,), name=f"{self.name}.bias")
            fill(bias, _filler_spec(self.spec.param("bias_filler")), rng)
            self.blobs.append(bias)

    def _filler_rng(self) -> np.random.Generator:
        seed = int(self.spec.param("filler_seed", 0)) or stable_seed(self.name)
        return np.random.default_rng(seed)

    def reshape(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        n, c, h, w = bottom[0].shape
        if c != self.channels:
            raise ValueError(
                f"layer {self.name!r}: channel count changed from "
                f"{self.channels} to {c}"
            )
        self.out_h = conv_out_size(h, self.kernel_h, self.pad_h, self.stride_h)
        self.out_w = conv_out_size(w, self.kernel_w, self.pad_w, self.stride_w)
        top[0].reshape((n, self.num_output, self.out_h, self.out_w))
        self._col_shape = (
            (c // self.group) * self.kernel_h * self.kernel_w,
            self.out_h * self.out_w,
        )

    # ------------------------------------------------------------------
    # chunk protocol: one iteration == one sample
    # ------------------------------------------------------------------
    def forward_space(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> int:
        return bottom[0].shape[0]

    def forward_chunk(
        self, bottom: Sequence[Blob], top: Sequence[Blob], lo: int, hi: int
    ) -> None:
        x = bottom[0].data
        y = top[0].data
        weights = self.blobs[0].data.reshape(self.num_output, -1)
        col = scratch_buffer("conv.col", self._col_shape, DTYPE)
        cg = self.channels // self.group
        og = self.num_output // self.group
        for s in range(lo, hi):
            for g in range(self.group):
                blaslib.im2col(
                    x[s, g * cg : (g + 1) * cg],
                    self.kernel_h, self.kernel_w,
                    self.pad_h, self.pad_w,
                    self.stride_h, self.stride_w,
                    out=col,
                )
                out_plane = y[s, g * og : (g + 1) * og].reshape(og, -1)
                blaslib.gemm(
                    False, False, 1.0,
                    weights[g * og : (g + 1) * og], col,
                    0.0, out_plane,
                )
            if self.bias_term:
                bias = self.blobs[1].data
                y[s] += bias[:, None, None]
        top[0].mark_host_data_dirty()

    def backward_chunk(
        self,
        top: Sequence[Blob],
        propagate_down: Sequence[bool],
        bottom: Sequence[Blob],
        lo: int,
        hi: int,
        param_grads: Sequence[np.ndarray],
    ) -> None:
        x = bottom[0].data
        dy = top[0].diff
        dx = bottom[0].diff if propagate_down[0] else None
        weights = self.blobs[0].data.reshape(self.num_output, -1)
        dweights = param_grads[0].reshape(self.num_output, -1)
        dbias = param_grads[1] if self.bias_term else None

        col = scratch_buffer("conv.col", self._col_shape, DTYPE)
        dcol = scratch_buffer("conv.dcol", self._col_shape, DTYPE)
        cg = self.channels // self.group
        og = self.num_output // self.group
        _, _, in_h, in_w = bottom[0].shape

        for s in range(lo, hi):
            dy_s = dy[s].reshape(self.num_output, -1)
            if dbias is not None:
                dbias += dy_s.sum(axis=1)
            for g in range(self.group):
                dy_g = dy_s[g * og : (g + 1) * og]
                blaslib.im2col(
                    x[s, g * cg : (g + 1) * cg],
                    self.kernel_h, self.kernel_w,
                    self.pad_h, self.pad_w,
                    self.stride_h, self.stride_w,
                    out=col,
                )
                # dW_g += dY_g @ col^T
                blaslib.gemm(
                    False, True, 1.0, dy_g, col, 1.0,
                    dweights[g * og : (g + 1) * og],
                )
                if dx is not None:
                    # dcol = W_g^T @ dY_g, then fold back onto the image.
                    blaslib.gemm(
                        True, False, 1.0,
                        weights[g * og : (g + 1) * og], dy_g,
                        0.0, dcol,
                    )
                    blaslib.col2im(
                        dcol, cg, in_h, in_w,
                        self.kernel_h, self.kernel_w,
                        self.pad_h, self.pad_w,
                        self.stride_h, self.stride_w,
                        out=dx[s, g * cg : (g + 1) * cg],
                    )
        if dx is not None:
            bottom[0].mark_host_diff_dirty()


@register_shape_rule("Convolution")
def _conv_shape_rule(spec, bottoms) -> RuleResult:
    """Symbolic mirror of :meth:`ConvolutionLayer.reshape`."""
    require_axes(spec, bottoms[0], 4)
    n, c, h, w = bottoms[0].shape
    num_output = int(spec.require("num_output"))
    kernel_h, kernel_w = _pair(spec, "kernel")
    stride_h, stride_w = _pair(spec, "stride", default=1)
    pad_h, pad_w = _pair(spec, "pad", default=0)
    group = int(spec.param("group", 1))
    if num_output % group or c % group:
        raise ShapeError(
            f"layer {spec.name!r}: group {group} must divide both channels "
            f"{c} and num_output {num_output}"
        )
    try:
        out_h = conv_out_size(h, kernel_h, pad_h, stride_h)
        out_w = conv_out_size(w, kernel_w, pad_w, stride_w)
    except ValueError as exc:
        raise ShapeError(f"layer {spec.name!r}: {exc}") from exc

    notes = []
    for label, extent, kernel, pad, stride in (
        ("height", h, kernel_h, pad_h, stride_h),
        ("width", w, kernel_w, pad_w, stride_w),
    ):
        rem = (extent + 2 * pad - kernel) % stride
        if rem:
            notes.append((
                NOTE_DROPPED_PIXELS,
                f"layer {spec.name!r}: stride {stride} drops the last {rem} "
                f"input row(s)/col(s) along {label} "
                f"(({extent} + 2*{pad} - {kernel}) % {stride} != 0)",
            ))

    param_shapes = [(num_output, c // group, kernel_h, kernel_w)]
    if bool(spec.param("bias_term", True)):
        param_shapes.append((num_output,))
    return RuleResult(
        tops=[BlobInfo((n, num_output, out_h, out_w))],
        forward_space=n,
        param_shapes=param_shapes,
        notes=notes,
    )


def _filler_spec(raw) -> FillerSpec:
    """Build a :class:`FillerSpec` from a parsed ``weight_filler`` block."""
    if raw is None:
        return FillerSpec(type="constant", value=0.0)
    if isinstance(raw, FillerSpec):
        return raw
    if isinstance(raw, dict):
        known = {k: v for k, v in raw.items()
                 if k in ("type", "value", "min", "max", "mean", "std",
                          "variance_norm")}
        return FillerSpec(**known)
    raise TypeError(f"cannot interpret filler spec {raw!r}")
