"""Pooling layer (MAX and AVE), the paper's dimensionality-reduction layer.

The coalesced iteration space is ``S * C``: one iteration reduces one
``(H, W)`` plane of one sample — the Figure 2 scheme where a group of
input segments produces one output segment.  Because the blob layout is
``(N, C, H, W)`` C-contiguous, the planes of a chunk ``[lo, hi)`` are a
contiguous slab of memory, and the whole chunk is processed with one
strided-window computation (the per-segment BLAS call of Algorithm 2,
batched over the chunk).

Semantics follow Caffe exactly:

* *ceil* output sizing, so the last window may overhang the padded image;
* MAX records each window's argmax (first occurrence, row-major) for the
  backward routing;
* AVE divides by the window area clipped to the *padded* image bounds
  (``height + pad``), which reduces to the true clipped area when
  ``pad == 0``.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.compiler.scratch import scratch_buffer
from repro.framework.blob import DTYPE, Blob
from repro.framework.layer import (
    FootprintDecl,
    Layer,
    PerfDecl,
    register_layer,
)
from repro.framework.layers.conv import _pair
from repro.framework.shape_inference import (
    NOTE_SKIPPED_PIXELS,
    BlobInfo,
    RuleResult,
    ShapeError,
    register_shape_rule,
    require_axes,
)


def pool_out_size(in_size: int, kernel: int, pad: int, stride: int) -> int:
    """Pooled output extent with Caffe's ceil semantics."""
    out = int(math.ceil((in_size + 2 * pad - kernel) / stride)) + 1
    # The last window must start strictly inside the (padded) image;
    # kernel < stride geometries can otherwise produce an empty window.
    if (out - 1) * stride >= in_size + pad:
        out -= 1
    return out


@register_layer("Pooling")
class PoolingLayer(Layer):
    """Max / average pooling.

    Parameters (``pooling_param``): ``pool`` (``MAX`` default, or ``AVE``),
    ``kernel_size`` or ``kernel_h``/``kernel_w``, ``stride`` (default 1),
    ``pad`` (default 0).
    """

    exact_num_bottom = 1
    exact_num_top = 1

    write_footprint = FootprintDecl(scratch=("_max_idx",))

    perf_decl = PerfDecl(
        loops=("backward_chunk",),
        note=(
            "MAX backward scatter-adds one plane at a time "
            "(np.add.at per plane): overlapping windows can route to the "
            "same input cell, and per-plane processing keeps the "
            "accumulation order independent of chunking"
        ),
    )

    def layer_setup(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        spec = self.spec
        method = str(spec.param("pool", "MAX")).upper()
        if method not in ("MAX", "AVE"):
            raise ValueError(
                f"layer {self.name!r}: unsupported pool method {method!r}"
            )
        self.method = method
        self.kernel_h, self.kernel_w = _pair(spec, "kernel")
        self.stride_h, self.stride_w = _pair(spec, "stride", default=1)
        self.pad_h, self.pad_w = _pair(spec, "pad", default=0)
        if self.pad_h >= self.kernel_h or self.pad_w >= self.kernel_w:
            raise ValueError(
                f"layer {self.name!r}: pad must be smaller than the kernel"
            )

    def reshape(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        n, c, h, w = bottom[0].shape
        self.in_h, self.in_w = h, w
        self.out_h = pool_out_size(h, self.kernel_h, self.pad_h, self.stride_h)
        self.out_w = pool_out_size(w, self.kernel_w, self.pad_w, self.stride_w)
        top[0].reshape((n, c, self.out_h, self.out_w))
        # Padded scratch extents: large enough for every (possibly
        # overhanging) window.
        self.eff_h = max(h + 2 * self.pad_h,
                         (self.out_h - 1) * self.stride_h + self.kernel_h)
        self.eff_w = max(w + 2 * self.pad_w,
                         (self.out_w - 1) * self.stride_w + self.kernel_w)
        if self.method == "MAX":
            # Plane-local flat index (ih * in_w + iw) of each window max.
            self._max_idx = np.zeros(
                (n * c, self.out_h, self.out_w), dtype=np.int64
            )
            # Window-origin grids for the argmax -> plane-coordinate map,
            # built once here so forward_chunk never allocates them.
            self._ih_base = (np.arange(self.out_h)
                             * self.stride_h)[None, :, None]
            self._iw_base = (np.arange(self.out_w)
                             * self.stride_w)[None, None, :]
        else:
            self._ave_divisor = self._divisor_grid()

    def _divisor_grid(self) -> np.ndarray:
        """Caffe's AVE divisor: window area clipped to the padded image."""
        oh = np.arange(self.out_h)
        ow = np.arange(self.out_w)
        h0 = oh * self.stride_h - self.pad_h
        w0 = ow * self.stride_w - self.pad_w
        h1 = np.minimum(h0 + self.kernel_h, self.in_h + self.pad_h)
        w1 = np.minimum(w0 + self.kernel_w, self.in_w + self.pad_w)
        heights = (h1 - h0).astype(DTYPE)
        widths = (w1 - w0).astype(DTYPE)
        return heights[:, None] * widths[None, :]

    # ------------------------------------------------------------------
    # chunk protocol: one iteration == one (sample, channel) plane
    # ------------------------------------------------------------------
    def forward_space(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> int:
        n, c = bottom[0].shape[0], bottom[0].shape[1]
        return n * c

    def _windows(self, padded: np.ndarray) -> np.ndarray:
        """Strided view ``(P, out_h, out_w, kernel_h, kernel_w)``."""
        sp, sh, sw = padded.strides
        return np.lib.stride_tricks.as_strided(
            padded,
            shape=(padded.shape[0], self.out_h, self.out_w,
                   self.kernel_h, self.kernel_w),
            strides=(sp, sh * self.stride_h, sw * self.stride_w, sh, sw),
            writeable=False,
        )

    def forward_chunk(
        self, bottom: Sequence[Blob], top: Sequence[Blob], lo: int, hi: int
    ) -> None:
        planes = bottom[0].data.reshape(-1, self.in_h, self.in_w)[lo:hi]
        out = top[0].data.reshape(-1, self.out_h, self.out_w)[lo:hi]
        count = hi - lo
        if count <= 0:
            return
        padded = scratch_buffer(
            "pool.fwd", (count, self.eff_h, self.eff_w), DTYPE
        )
        padded.fill(-np.inf if self.method == "MAX" else 0.0)
        padded[:, self.pad_h : self.pad_h + self.in_h,
               self.pad_w : self.pad_w + self.in_w] = planes

        windows = self._windows(padded)
        if self.method == "MAX":
            flat = windows.reshape(count, self.out_h, self.out_w, -1)
            arg = flat.argmax(axis=3)
            np.copyto(
                out,
                np.take_along_axis(flat, arg[..., None], axis=3)[..., 0],
            )
            # Map window-local argmax back to plane-local coordinates.
            wh, ww = np.divmod(arg, self.kernel_w)
            ih = self._ih_base + wh - self.pad_h
            iw = self._iw_base + ww - self.pad_w
            self._max_idx[lo:hi] = ih * self.in_w + iw
        else:
            sums = windows.sum(axis=(3, 4), dtype=DTYPE)
            np.divide(sums, self._ave_divisor[None], out=out)
        top[0].mark_host_data_dirty()

    def backward_chunk(
        self,
        top: Sequence[Blob],
        propagate_down: Sequence[bool],
        bottom: Sequence[Blob],
        lo: int,
        hi: int,
        param_grads: Sequence[np.ndarray],
    ) -> None:
        if not propagate_down[0]:
            return
        dplanes = bottom[0].diff.reshape(-1, self.in_h, self.in_w)[lo:hi]
        dout = top[0].diff.reshape(-1, self.out_h, self.out_w)[lo:hi]
        count = hi - lo
        if count <= 0:
            return
        dplanes.fill(0.0)
        if self.method == "MAX":
            flat = dplanes.reshape(count, -1)
            idx = self._max_idx[lo:hi].reshape(count, -1)
            grads = dout.reshape(count, -1)
            # Scatter-add per plane; window maxima can coincide across
            # overlapping windows, so accumulation is required.
            for p in range(count):
                np.add.at(flat[p], idx[p], grads[p])
        else:
            contrib = dout / self._ave_divisor[None]
            padded = scratch_buffer(
                "pool.bwd", (count, self.eff_h, self.eff_w), DTYPE
            )
            padded.fill(0.0)
            for kh in range(self.kernel_h):
                h_stop = kh + self.stride_h * self.out_h
                for kw in range(self.kernel_w):
                    w_stop = kw + self.stride_w * self.out_w
                    padded[:, kh:h_stop:self.stride_h,
                           kw:w_stop:self.stride_w] += contrib
            dplanes += padded[:, self.pad_h : self.pad_h + self.in_h,
                              self.pad_w : self.pad_w + self.in_w]
        bottom[0].mark_host_diff_dirty()


@register_shape_rule("Pooling")
def _pool_shape_rule(spec, bottoms) -> RuleResult:
    """Symbolic mirror of :meth:`PoolingLayer.reshape` (ceil semantics)."""
    require_axes(spec, bottoms[0], 4)
    n, c, h, w = bottoms[0].shape
    method = str(spec.param("pool", "MAX")).upper()
    if method not in ("MAX", "AVE"):
        raise ShapeError(
            f"layer {spec.name!r}: unsupported pool method {method!r}"
        )
    kernel_h, kernel_w = _pair(spec, "kernel")
    stride_h, stride_w = _pair(spec, "stride", default=1)
    pad_h, pad_w = _pair(spec, "pad", default=0)
    if pad_h >= kernel_h or pad_w >= kernel_w:
        raise ShapeError(
            f"layer {spec.name!r}: pad ({pad_h}, {pad_w}) must be smaller "
            f"than the kernel ({kernel_h}, {kernel_w})"
        )
    out_h = pool_out_size(h, kernel_h, pad_h, stride_h)
    out_w = pool_out_size(w, kernel_w, pad_w, stride_w)
    if out_h <= 0 or out_w <= 0:
        raise ShapeError(
            f"layer {spec.name!r}: window does not fit "
            f"(in=({h}, {w}) kernel=({kernel_h}, {kernel_w}))"
        )
    notes = []
    for label, kernel, stride in (
        ("height", kernel_h, stride_h),
        ("width", kernel_w, stride_w),
    ):
        if stride > kernel:
            notes.append((
                NOTE_SKIPPED_PIXELS,
                f"layer {spec.name!r}: stride {stride} exceeds the kernel "
                f"{kernel} along {label}, so {stride - kernel} input "
                f"row(s)/col(s) between windows are never pooled",
            ))
    return RuleResult(
        tops=[BlobInfo((n, c, out_h, out_w))],
        forward_space=n * c,
        notes=notes,
    )
