"""Scale and Bias layers: learned per-channel affine transforms.

``Scale``: ``y[n,c,...] = gamma[c] * x[n,c,...] (+ beta[c])``;
``Bias``: the additive half alone.  These are the building blocks Caffe
pairs with BatchNorm.

Their backward pass is a second demonstration of reduction-free
coefficient gradients (besides InnerProduct): ``dgamma[c]`` sums over
every sample and spatial position of channel ``c``, so the coefficient
loop parallelizes over *channels* — each channel's sum is computed by
one thread in a fixed order, bitwise independent of the chunking.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.framework.blob import DTYPE, Blob
from repro.framework.fillers import fill, stable_seed
from repro.framework.layer import (
    FootprintDecl,
    Layer,
    LoopSpec,
    PerfDecl,
    RNGDecl,
    register_layer,
)
from repro.framework.layers.conv import _filler_spec
from repro.framework.shape_inference import (
    BlobInfo,
    RuleResult,
    canonical_axis,
    register_shape_rule,
)


class _ChannelAffineBase(Layer):
    """Shared machinery: channel axis handling and loop decomposition."""

    exact_num_bottom = 1
    exact_num_top = 1

    def _setup_geometry(self, bottom: Sequence[Blob]) -> None:
        self.axis = bottom[0].canonical_axis(int(self.spec.param("axis", 1)))
        self.channels = bottom[0].shape[self.axis]
        self.outer = 1
        for dim in bottom[0].shape[: self.axis]:
            self.outer *= dim
        self.inner = 1
        for dim in bottom[0].shape[self.axis + 1:]:
            self.inner *= dim

    def reshape(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        if bottom[0].shape[self.axis] != self.channels:
            raise ValueError(
                f"layer {self.name!r}: channel extent changed from "
                f"{self.channels} to {bottom[0].shape[self.axis]}"
            )
        if top[0] is not bottom[0]:
            top[0].reshape_like(bottom[0])

    def _view(self, flat: np.ndarray) -> np.ndarray:
        return flat.reshape(self.outer, self.channels, self.inner)

    def forward_space(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> int:
        return self.outer


@register_layer("Scale")
class ScaleLayer(_ChannelAffineBase):
    """Per-channel scaling with optional bias.

    Parameters (``scale_param``): ``axis`` (default 1), ``bias_term``
    (default false), ``filler`` (default constant 1), ``bias_filler``.
    """

    # backward_loops() splits into reduction-free loops over sample rows
    # and channels; no privatized reduction is executed.
    write_footprint = FootprintDecl()

    rng_provenance = RNGDecl(seed_params=("filler_seed",),
                             fallback="stable_digest")

    perf_decl = PerfDecl(
        float64=("_backward_param_channels",),
        copies=("_backward_param_channels",),
        loops=("_backward_param_channels",),
        note=(
            "coefficient gradients accumulate one channel per iteration "
            "in float64 dot/sum with a fixed order (the bitwise reduction "
            "contract); the strided per-channel views are copied "
            "contiguous for the dot"
        ),
    )

    def layer_setup(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        self._setup_geometry(bottom)
        self.bias_term = bool(self.spec.param("bias_term", False))
        rng = np.random.default_rng(
            int(self.spec.param("filler_seed", 0)) or stable_seed(self.name)
        )
        gamma = Blob((self.channels,), name=f"{self.name}.scale")
        filler = self.spec.param("filler")
        if filler is None:
            gamma.flat_data.fill(1.0)
        else:
            fill(gamma, _filler_spec(filler), rng)
        self.blobs = [gamma]
        if self.bias_term:
            beta = Blob((self.channels,), name=f"{self.name}.bias")
            fill(beta, _filler_spec(self.spec.param("bias_filler")), rng)
            self.blobs.append(beta)

    def forward_chunk(
        self, bottom: Sequence[Blob], top: Sequence[Blob], lo: int, hi: int
    ) -> None:
        x = self._view(bottom[0].flat_data)[lo:hi]
        y = self._view(top[0].flat_data)[lo:hi]
        gamma = self.blobs[0].data[None, :, None]
        np.multiply(x, gamma, out=y)
        if self.bias_term:
            y += self.blobs[1].data[None, :, None]
        top[0].mark_host_data_dirty()

    def _backward_data_chunk(self, top, bottom, lo: int, hi: int) -> None:
        dy = self._view(top[0].flat_diff)[lo:hi]
        dx = self._view(bottom[0].flat_diff)[lo:hi]
        np.multiply(dy, self.blobs[0].data[None, :, None], out=dx)
        bottom[0].mark_host_diff_dirty()

    def _backward_param_channels(self, top, bottom, lo: int, hi: int) -> None:
        """Coefficient gradients for channels [lo, hi): full reductions
        over (outer, inner) per channel, chunking-invariant."""
        x = self._view(bottom[0].flat_data)
        dy = self._view(top[0].flat_diff)
        dgamma = self.blobs[0].flat_diff
        dbeta = self.blobs[1].flat_diff if self.bias_term else None
        for c in range(lo, hi):
            dgamma[c] += float(
                np.dot(dy[:, c].ravel().astype(np.float64),
                       x[:, c].ravel().astype(np.float64))
            )
            if dbeta is not None:
                dbeta[c] += dy[:, c].sum(dtype=np.float64)
        self.blobs[0].mark_host_diff_dirty()
        if dbeta is not None:
            self.blobs[1].mark_host_diff_dirty()

    def backward_chunk(self, top, propagate_down, bottom, lo, hi,
                       param_grads) -> None:
        # Generic per-sample path (used when called directly).
        x = self._view(bottom[0].flat_data)[lo:hi]
        dy = self._view(top[0].flat_diff)[lo:hi]
        param_grads[0] += (dy * x).sum(axis=(0, 2))
        if self.bias_term:
            param_grads[1] += dy.sum(axis=(0, 2))
        if propagate_down[0]:
            self._backward_data_chunk(top, bottom, lo, hi)

    def backward_loops(self, top, propagate_down, bottom):
        loops = []
        if propagate_down[0]:
            loops.append(LoopSpec(
                space=self.outer,
                body=lambda lo, hi, grads: self._backward_data_chunk(
                    top, bottom, lo, hi),
            ))
        loops.append(LoopSpec(
            space=self.channels,
            body=lambda lo, hi, grads: self._backward_param_channels(
                top, bottom, lo, hi),
        ))
        return loops


@register_layer("Bias")
class BiasLayer(_ChannelAffineBase):
    """Per-channel additive bias (the Scale layer's additive half)."""

    write_footprint = FootprintDecl()

    rng_provenance = RNGDecl(seed_params=("filler_seed",),
                             fallback="stable_digest")

    perf_decl = PerfDecl(
        float64=("_backward_param_channels",),
        loops=("_backward_param_channels",),
        note=(
            "bias gradients accumulate one channel per iteration in a "
            "fixed-order float64 sum (the bitwise reduction contract)"
        ),
    )

    def layer_setup(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        self._setup_geometry(bottom)
        rng = np.random.default_rng(
            int(self.spec.param("filler_seed", 0)) or stable_seed(self.name)
        )
        beta = Blob((self.channels,), name=f"{self.name}.bias")
        fill(beta, _filler_spec(self.spec.param("filler")), rng)
        self.blobs = [beta]

    def forward_chunk(self, bottom, top, lo, hi) -> None:
        x = self._view(bottom[0].flat_data)[lo:hi]
        y = self._view(top[0].flat_data)[lo:hi]
        np.add(x, self.blobs[0].data[None, :, None], out=y)
        top[0].mark_host_data_dirty()

    def _backward_param_channels(self, top, lo: int, hi: int) -> None:
        dy = self._view(top[0].flat_diff)
        dbeta = self.blobs[0].flat_diff
        for c in range(lo, hi):
            dbeta[c] += dy[:, c].sum(dtype=np.float64)
        self.blobs[0].mark_host_diff_dirty()

    def _backward_data_chunk(self, top, bottom, lo: int, hi: int) -> None:
        if top[0] is not bottom[0]:
            np.copyto(self._view(bottom[0].flat_diff)[lo:hi],
                      self._view(top[0].flat_diff)[lo:hi])
            bottom[0].mark_host_diff_dirty()

    def backward_chunk(self, top, propagate_down, bottom, lo, hi,
                       param_grads) -> None:
        dy = self._view(top[0].flat_diff)[lo:hi]
        param_grads[0] += dy.sum(axis=(0, 2))
        if propagate_down[0]:
            self._backward_data_chunk(top, bottom, lo, hi)

    def backward_loops(self, top, propagate_down, bottom):
        loops = []
        if propagate_down[0]:
            loops.append(LoopSpec(
                space=self.outer,
                body=lambda lo, hi, grads: self._backward_data_chunk(
                    top, bottom, lo, hi),
            ))
        loops.append(LoopSpec(
            space=self.channels,
            body=lambda lo, hi, grads: self._backward_param_channels(
                top, lo, hi),
        ))
        return loops


def _affine_rule(spec, bottoms, with_scale: bool) -> RuleResult:
    axis = canonical_axis(spec, bottoms[0], int(spec.param("axis", 1)))
    channels = bottoms[0].shape[axis]
    outer = 1
    for dim in bottoms[0].shape[:axis]:
        outer *= dim
    if with_scale:
        param_shapes = [(channels,)]
        if bool(spec.param("bias_term", False)):
            param_shapes.append((channels,))
    else:
        param_shapes = [(channels,)]
    return RuleResult(
        tops=[BlobInfo(bottoms[0].shape, bottoms[0].dtype)],
        forward_space=outer,
        param_shapes=param_shapes,
    )


@register_shape_rule("Scale", inplace_ok=True)
def _scale_shape_rule(spec, bottoms) -> RuleResult:
    return _affine_rule(spec, bottoms, with_scale=True)


@register_shape_rule("Bias", inplace_ok=True)
def _bias_shape_rule(spec, bottoms) -> RuleResult:
    return _affine_rule(spec, bottoms, with_scale=False)
