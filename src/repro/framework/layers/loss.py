"""Loss layers: SoftmaxWithLoss and EuclideanLoss.

Loss layers end the forward pass of the paper's networks (the MNIST and
CIFAR-10 stacks both terminate in a SoftmaxWithLoss).  Their top blob is a
scalar reduction over the batch, which cannot be chunk-written disjointly;
instead :meth:`forward_chunk` fills a per-sample partial-loss scratch and
:meth:`forward_finalize` folds it in fixed sample order, so the loss value
is bitwise identical for any thread count — the observable quantity the
paper's convergence-invariance argument is about (developers monitor the
loss to validate training).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.framework.blob import DTYPE, Blob
from repro.framework.layer import (
    FootprintDecl,
    Layer,
    PerfDecl,
    register_layer,
)
from repro.framework.shape_inference import (
    BlobInfo,
    RuleResult,
    ShapeError,
    register_shape_rule,
)


class LossLayer(Layer):
    """Base for loss layers: scalar top, default loss weight 1."""

    exact_num_bottom = 2
    exact_num_top = 1

    def default_loss_weight(self) -> float:
        return 1.0

    def reshape(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        top[0].reshape(())
        self._per_sample = np.zeros(bottom[0].shape[0], dtype=np.float64)

    def forward_space(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> int:
        return bottom[0].shape[0]

    def forward_finalize(
        self, bottom: Sequence[Blob], top: Sequence[Blob]
    ) -> None:
        batch = bottom[0].shape[0]
        total = 0.0
        for s in range(batch):  # fixed order: bitwise thread-invariant
            total += self._per_sample[s]
        top[0].flat_data[0] = DTYPE(total / self._normalizer(batch))
        top[0].mark_host_data_dirty()

    def _normalizer(self, batch: int) -> float:
        return float(batch)


@register_layer("SoftmaxWithLoss")
class SoftmaxWithLossLayer(LossLayer):
    """Softmax followed by multinomial logistic loss, fused (as in Caffe).

    Bottom 0 holds class scores ``(S, classes)`` (or 4-d with singleton
    spatial dims); bottom 1 holds integer labels ``(S,)``.  Supports
    ``ignore_label``.
    """

    write_footprint = FootprintDecl(
        scratch=("_per_sample", "_prob", "_valid")
    )

    perf_decl = PerfDecl(
        allocs=("forward_chunk", "backward_chunk"),
        note=(
            "label gathers need an np.arange row index and an "
            "ignore-label mask per chunk; both are O(chunk) int/bool "
            "vectors, far below the pooling break-even"
        ),
    )

    def layer_setup(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        self.ignore_label = self.spec.param("ignore_label")
        if self.ignore_label is not None:
            self.ignore_label = int(self.ignore_label)

    def reshape(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        super().reshape(bottom, top)
        batch = bottom[0].shape[0]
        classes = bottom[0].count // batch
        self._prob = np.zeros((batch, classes), dtype=DTYPE)
        self._valid = np.zeros(batch, dtype=bool)

    def forward_chunk(
        self, bottom: Sequence[Blob], top: Sequence[Blob], lo: int, hi: int
    ) -> None:
        batch = bottom[0].shape[0]
        scores = bottom[0].flat_data.reshape(batch, -1)[lo:hi]
        labels = bottom[1].flat_data[lo:hi].astype(np.int64)
        shifted = scores - scores.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        prob = exp / exp.sum(axis=1, keepdims=True)
        self._prob[lo:hi] = prob
        classes = prob.shape[1]
        if np.any(labels < 0) or np.any(labels >= classes):
            bad = labels[(labels < 0) | (labels >= classes)]
            if self.ignore_label is None or np.any(bad != self.ignore_label):
                raise ValueError(
                    f"layer {self.name!r}: label out of range "
                    f"[0, {classes}): {bad[:5]}"
                )
        rows = np.arange(hi - lo)
        valid = np.ones(hi - lo, dtype=bool)
        if self.ignore_label is not None:
            valid = labels != self.ignore_label
        self._valid[lo:hi] = valid
        picked = np.where(
            valid, prob[rows, np.clip(labels, 0, classes - 1)], 1.0
        )
        self._per_sample[lo:hi] = -np.log(np.maximum(picked, np.finfo(DTYPE).tiny))

    def _normalizer(self, batch: int) -> float:
        valid = int(self._valid.sum())
        return float(max(valid, 1))

    def backward_chunk(
        self,
        top: Sequence[Blob],
        propagate_down: Sequence[bool],
        bottom: Sequence[Blob],
        lo: int,
        hi: int,
        param_grads: Sequence[np.ndarray],
    ) -> None:
        if len(propagate_down) > 1 and propagate_down[1]:
            raise ValueError(
                f"layer {self.name!r}: cannot backpropagate to labels"
            )
        if not propagate_down[0]:
            return
        batch = bottom[0].shape[0]
        dscores = bottom[0].flat_diff.reshape(batch, -1)[lo:hi]
        labels = bottom[1].flat_data[lo:hi].astype(np.int64)
        prob = self._prob[lo:hi]
        valid = self._valid[lo:hi]
        classes = prob.shape[1]

        loss_weight = float(top[0].flat_diff[0]) * self.loss_weights[0]
        scale = loss_weight / self._normalizer(batch)
        np.copyto(dscores, prob * scale)
        rows = np.arange(hi - lo)
        safe_labels = np.clip(labels, 0, classes - 1)
        dscores[rows, safe_labels] -= scale
        if self.ignore_label is not None:
            dscores[~valid] = 0.0
        bottom[0].mark_host_diff_dirty()

    @property
    def prob(self) -> np.ndarray:
        """Most recent softmax probabilities (for inspection/tests)."""
        return self._prob


@register_layer("EuclideanLoss")
class EuclideanLossLayer(LossLayer):
    """``loss = 1/(2S) * sum ||x0_s - x1_s||^2`` (Caffe EuclideanLoss)."""

    write_footprint = FootprintDecl(scratch=("_per_sample", "_diff"))

    perf_decl = PerfDecl(
        float64=("forward_chunk",),
        note=(
            "per-sample squared-error partials accumulate in float64 so "
            "the finalize fold is bitwise identical in any chunk order"
        ),
    )

    def reshape(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        if bottom[0].count != bottom[1].count:
            raise ValueError(
                f"layer {self.name!r}: bottoms disagree in count "
                f"({bottom[0].count} vs {bottom[1].count})"
            )
        super().reshape(bottom, top)
        self._diff = np.zeros(
            (bottom[0].shape[0], bottom[0].count // bottom[0].shape[0]),
            dtype=DTYPE,
        )

    def forward_chunk(
        self, bottom: Sequence[Blob], top: Sequence[Blob], lo: int, hi: int
    ) -> None:
        batch = bottom[0].shape[0]
        a = bottom[0].flat_data.reshape(batch, -1)[lo:hi]
        b = bottom[1].flat_data.reshape(batch, -1)[lo:hi]
        diff = a - b
        self._diff[lo:hi] = diff
        self._per_sample[lo:hi] = 0.5 * (diff.astype(np.float64) ** 2).sum(axis=1)

    def backward_chunk(
        self,
        top: Sequence[Blob],
        propagate_down: Sequence[bool],
        bottom: Sequence[Blob],
        lo: int,
        hi: int,
        param_grads: Sequence[np.ndarray],
    ) -> None:
        batch = bottom[0].shape[0]
        loss_weight = float(top[0].flat_diff[0]) * self.loss_weights[0]
        scale = loss_weight / batch
        for i, sign in ((0, 1.0), (1, -1.0)):
            if propagate_down[i]:
                dx = bottom[i].flat_diff.reshape(batch, -1)[lo:hi]
                np.copyto(dx, sign * scale * self._diff[lo:hi])
                bottom[i].mark_host_diff_dirty()


@register_shape_rule("SoftmaxWithLoss", terminal_ok=True)
def _softmax_loss_shape_rule(spec, bottoms) -> RuleResult:
    """Scalar loss over the batch; bottom 1 carries the labels."""
    if len(bottoms) != 2:
        raise ShapeError(
            f"layer {spec.name!r}: needs 2 bottoms (scores, labels), "
            f"got {len(bottoms)}"
        )
    batch = bottoms[0].shape[0] if bottoms[0].num_axes else 1
    labels = bottoms[1]
    if labels.num_axes and labels.shape[0] != batch:
        raise ShapeError(
            f"layer {spec.name!r}: label batch {labels.shape[0]} != "
            f"score batch {batch}"
        )
    return RuleResult(tops=[BlobInfo(())], forward_space=batch)


@register_shape_rule("EuclideanLoss", terminal_ok=True)
def _euclidean_loss_shape_rule(spec, bottoms) -> RuleResult:
    if len(bottoms) != 2:
        raise ShapeError(
            f"layer {spec.name!r}: needs 2 bottoms, got {len(bottoms)}"
        )
    if bottoms[0].count != bottoms[1].count:
        raise ShapeError(
            f"layer {spec.name!r}: bottoms disagree in count "
            f"({bottoms[0].count} vs {bottoms[1].count})"
        )
    batch = bottoms[0].shape[0] if bottoms[0].num_axes else 1
    return RuleResult(tops=[BlobInfo(())], forward_space=batch)
