"""Softmax layer (probabilities along the channel axis)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.framework.blob import Blob
from repro.framework.layer import FootprintDecl, Layer, register_layer
from repro.framework.shape_inference import (
    BlobInfo,
    RuleResult,
    canonical_axis,
    register_shape_rule,
)


@register_layer("Softmax")
class SoftmaxLayer(Layer):
    """Channel-wise softmax: ``y = exp(x - max) / sum(exp(x - max))``.

    The coalesced iteration space is the outer extent (everything before
    the softmax axis, conventionally the batch): one iteration normalizes
    one sample's class scores.
    """

    exact_num_bottom = 1
    exact_num_top = 1

    write_footprint = FootprintDecl()

    def layer_setup(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        self.axis = bottom[0].canonical_axis(int(self.spec.param("axis", 1)))

    def reshape(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        if top[0] is not bottom[0]:
            top[0].reshape_like(bottom[0])
        shape = bottom[0].shape
        self.outer = int(np.prod(shape[: self.axis])) if self.axis else 1
        self.classes = shape[self.axis]
        self.inner = (
            int(np.prod(shape[self.axis + 1 :]))
            if self.axis + 1 < len(shape) else 1
        )

    def forward_space(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> int:
        return self.outer

    def _view(self, flat: np.ndarray) -> np.ndarray:
        return flat.reshape(self.outer, self.classes, self.inner)

    def forward_chunk(
        self, bottom: Sequence[Blob], top: Sequence[Blob], lo: int, hi: int
    ) -> None:
        x = self._view(bottom[0].flat_data)[lo:hi]
        y = self._view(top[0].flat_data)[lo:hi]
        shifted = x - x.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        np.divide(exp, exp.sum(axis=1, keepdims=True), out=y)
        top[0].mark_host_data_dirty()

    def backward_chunk(
        self,
        top: Sequence[Blob],
        propagate_down: Sequence[bool],
        bottom: Sequence[Blob],
        lo: int,
        hi: int,
        param_grads: Sequence[np.ndarray],
    ) -> None:
        if not propagate_down[0]:
            return
        y = self._view(top[0].flat_data)[lo:hi]
        dy = self._view(top[0].flat_diff)[lo:hi]
        dx = self._view(bottom[0].flat_diff)[lo:hi]
        # dx = y * (dy - sum(dy * y, axis=classes))
        dot = (dy * y).sum(axis=1, keepdims=True)
        np.copyto(dx, y * (dy - dot))
        bottom[0].mark_host_diff_dirty()


@register_shape_rule("Softmax", inplace_ok=True)
def _softmax_shape_rule(spec, bottoms) -> RuleResult:
    axis = canonical_axis(spec, bottoms[0], int(spec.param("axis", 1)))
    outer = 1
    for dim in bottoms[0].shape[:axis]:
        outer *= dim
    return RuleResult(
        tops=[BlobInfo(bottoms[0].shape, bottoms[0].dtype)],
        forward_space=outer,
    )
