"""Split layer: fans one blob out to several consumers.

The net inserts these automatically whenever a blob is consumed by more
than one layer, exactly as Caffe does: the forward pass copies the bottom
into every top, and the backward pass *sums* the top diffs into the bottom
diff — the reason a shared blob's gradient is well defined.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.framework.blob import Blob
from repro.framework.layer import FootprintDecl, Layer, register_layer
from repro.framework.shape_inference import (
    BlobInfo,
    RuleResult,
    register_shape_rule,
)


@register_layer("Split")
class SplitLayer(Layer):
    exact_num_bottom = 1
    min_num_top = 1

    write_footprint = FootprintDecl()

    def reshape(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        for t in top:
            t.reshape_like(bottom[0])

    def forward_space(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> int:
        return bottom[0].count

    def forward_chunk(
        self, bottom: Sequence[Blob], top: Sequence[Blob], lo: int, hi: int
    ) -> None:
        src = bottom[0].flat_data[lo:hi]
        for t in top:
            np.copyto(t.flat_data[lo:hi], src)
            t.mark_host_data_dirty()

    def backward_chunk(
        self,
        top: Sequence[Blob],
        propagate_down: Sequence[bool],
        bottom: Sequence[Blob],
        lo: int,
        hi: int,
        param_grads: Sequence[np.ndarray],
    ) -> None:
        if not propagate_down[0]:
            return
        dst = bottom[0].flat_diff[lo:hi]
        np.copyto(dst, top[0].flat_diff[lo:hi])
        for t in top[1:]:
            dst += t.flat_diff[lo:hi]
        bottom[0].mark_host_diff_dirty()


@register_shape_rule("Split")
def _split_shape_rule(spec, bottoms) -> RuleResult:
    return RuleResult(
        tops=[BlobInfo(bottoms[0].shape, bottoms[0].dtype)
              for _ in spec.tops],
        forward_space=bottoms[0].count,
    )
