"""Local response normalization (LRN), across channels (Caffe default).

``scale_i = k + (alpha / n) * sum_{j in window(i)} x_j^2`` over a window
of ``local_size`` channels centered at ``i``, and
``y_i = x_i * scale_i^{-beta}``.

The coalesced iteration space is ``S``: one iteration normalizes one
sample.  The paper's CIFAR-10 network uses two of these (norm1, norm2);
their per-layer scalability differs from the neighbouring conv/pool layers
because the normalization reads a window of channels, changing the
data-thread affinity (Section 4.2.1).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.compiler.scratch import scratch_buffer
from repro.framework.blob import DTYPE, Blob
from repro.framework.layer import (
    FootprintDecl,
    Layer,
    PerfDecl,
    register_layer,
)
from repro.framework.shape_inference import (
    BlobInfo,
    RuleResult,
    ShapeError,
    register_shape_rule,
    require_axes,
)


@register_layer("LRN")
class LRNLayer(Layer):
    """Across-channel local response normalization.

    Parameters (``lrn_param``): ``local_size`` (odd, default 5), ``alpha``
    (default 1.0), ``beta`` (default 0.75), ``k`` (default 1.0),
    ``norm_region`` (only ``ACROSS_CHANNELS`` is supported).
    """

    exact_num_bottom = 1
    exact_num_top = 1

    write_footprint = FootprintDecl(scratch=("_scale",))

    perf_decl = PerfDecl(
        float64=("forward_chunk", "backward_chunk", "_window_sum"),
        note=(
            "window sums accumulate in float64 with a fixed prefix-sum "
            "order so the normalization scale is bitwise identical for "
            "any chunking; results are cast back to DTYPE at the blob "
            "boundary"
        ),
    )

    def layer_setup(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        spec = self.spec
        self.local_size = int(spec.param("local_size", 5))
        if self.local_size % 2 == 0:
            raise ValueError(
                f"layer {self.name!r}: local_size must be odd, got "
                f"{self.local_size}"
            )
        self.alpha = float(spec.param("alpha", 1.0))
        self.beta = float(spec.param("beta", 0.75))
        self.k = float(spec.param("k", 1.0))
        region = str(spec.param("norm_region", "ACROSS_CHANNELS")).upper()
        if region != "ACROSS_CHANNELS":
            raise ValueError(
                f"layer {self.name!r}: only ACROSS_CHANNELS LRN is supported"
            )

    def reshape(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> None:
        if bottom[0].num_axes != 4:
            raise ValueError(
                f"layer {self.name!r}: LRN needs a 4-d bottom, got shape "
                f"{bottom[0].shape}"
            )
        top[0].reshape_like(bottom[0])
        self._scale = np.empty(bottom[0].shape, dtype=DTYPE)

    def forward_space(self, bottom: Sequence[Blob], top: Sequence[Blob]) -> int:
        return bottom[0].shape[0]

    def _window_sum(self, per_channel: np.ndarray) -> np.ndarray:
        """Sliding-window sum over the channel axis (axis 1) with zero
        padding, window ``local_size`` centered at each channel.

        Returns a float64 array from the per-thread scratch pool — valid
        until this thread's next ``_window_sum`` call with the same
        chunk geometry; callers consume it before then.
        """
        half = self.local_size // 2
        c = per_channel.shape[1]
        shape = list(per_channel.shape)
        shape[1] = c + 2 * half
        padded = scratch_buffer("lrn.padded", shape, dtype=np.float64)
        padded.fill(0.0)
        padded[:, half : half + c] = per_channel
        # Prefix sums with a leading zero: ext[:, j] = sum(padded[:, :j]),
        # so the window [i, i + local_size) is ext[i + local_size] - ext[i].
        shape[1] = c + 2 * half + 1
        ext = scratch_buffer("lrn.ext", shape, dtype=np.float64)
        ext[:, :1] = 0.0
        np.cumsum(padded, axis=1, dtype=np.float64, out=ext[:, 1:])
        shape[1] = c
        win = scratch_buffer("lrn.win", shape, dtype=np.float64)
        np.subtract(ext[:, self.local_size : self.local_size + c],
                    ext[:, :c], out=win)
        return win

    def forward_chunk(
        self, bottom: Sequence[Blob], top: Sequence[Blob], lo: int, hi: int
    ) -> None:
        x = bottom[0].data[lo:hi]
        y = top[0].data[lo:hi]
        sq = x.astype(np.float64) ** 2
        window = self._window_sum(sq)
        scale = self.k + (self.alpha / self.local_size) * window
        self._scale[lo:hi] = scale.astype(DTYPE)
        np.copyto(y, (x * np.power(self._scale[lo:hi], -self.beta)).astype(DTYPE))
        top[0].mark_host_data_dirty()

    def backward_chunk(
        self,
        top: Sequence[Blob],
        propagate_down: Sequence[bool],
        bottom: Sequence[Blob],
        lo: int,
        hi: int,
        param_grads: Sequence[np.ndarray],
    ) -> None:
        if not propagate_down[0]:
            return
        x = bottom[0].data[lo:hi]
        y = top[0].data[lo:hi]
        dy = top[0].diff[lo:hi]
        dx = bottom[0].diff[lo:hi]
        scale = self._scale[lo:hi]

        # dx_i = dy_i * scale_i^-beta
        #        - (2 alpha beta / n) * x_i * sum_{j: i in win(j)} dy_j y_j / scale_j
        ratio = (dy * y / scale).astype(np.float64)
        window = self._window_sum(ratio)
        coeff = 2.0 * self.alpha * self.beta / self.local_size
        np.copyto(
            dx,
            (dy * np.power(scale, -self.beta)
             - coeff * x * window.astype(DTYPE)),
        )
        bottom[0].mark_host_diff_dirty()


@register_shape_rule("LRN")
def _lrn_shape_rule(spec, bottoms) -> RuleResult:
    require_axes(spec, bottoms[0], 4)
    local_size = int(spec.param("local_size", 5))
    if local_size % 2 == 0:
        raise ShapeError(
            f"layer {spec.name!r}: local_size must be odd, got {local_size}"
        )
    region = str(spec.param("norm_region", "ACROSS_CHANNELS")).upper()
    if region != "ACROSS_CHANNELS":
        raise ShapeError(
            f"layer {spec.name!r}: only ACROSS_CHANNELS LRN is supported"
        )
    return RuleResult(
        tops=[BlobInfo(bottoms[0].shape, bottoms[0].dtype)],
        forward_space=bottoms[0].shape[0],
    )
