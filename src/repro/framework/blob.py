"""Blob: the unified storage unit of the framework.

A Blob is an N-dimensional array stored C-contiguously, holding two
parallel buffers: ``data`` (values) and ``diff`` (gradients).  For image
batches the conventional dimensions are ``(N, K, H, W)`` — batch size,
channels, height, width — and the value at index ``(n, k, h, w)`` lives at
flat offset ``((n * K + k) * H + h) * W + w``, exactly the layout the
paper's Figure 1 describes.  One ``(H, W)`` plane of one image is a *data
segment*; layers operate segment-wise (Figure 2).

Blobs also conceal mixed host/device execution: Caffe's ``SyncedMemory``
lazily copies between CPU and GPU.  We reproduce that protocol against the
:mod:`repro.simulator` device so fine-grain (GPU) execution paths exercise
the same state machine, including transfer accounting.
"""

from __future__ import annotations

import enum
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

DTYPE = np.float32

# ---------------------------------------------------------------------------
# write-hook points (used by repro.analysis's shadow-memory race detector)
# ---------------------------------------------------------------------------
#: When set, every host-buffer access (``data`` / ``diff`` / ``flat_data`` /
#: ``flat_diff`` / ``mark_host_*_dirty``) notifies the tracker via
#: ``tracker.on_host_access(blob, which)`` with ``which`` in
#: ``("data", "diff")``.  ``None`` (the default) keeps the hot path to a
#: single global ``is not None`` test.
_write_tracker = None


def set_write_tracker(tracker) -> Optional[object]:
    """Install (or clear, with ``None``) the global blob access tracker.

    Returns the previously installed tracker so callers can restore it.
    """
    global _write_tracker
    previous = _write_tracker
    _write_tracker = tracker
    return previous


def write_tracker():
    """The currently installed tracker, or ``None``."""
    return _write_tracker


class SyncState(enum.Enum):
    """Synchronization state of a blob buffer (Caffe's ``SyncedMemory``)."""

    UNINITIALIZED = "uninitialized"
    AT_CPU = "at_cpu"
    AT_DEVICE = "at_device"
    SYNCED = "synced"


class Blob:
    """N-dimensional array with data and diff halves.

    Parameters
    ----------
    shape:
        Dimension extents.  Empty shape creates a 0-d scalar blob.
    name:
        Optional label used in error messages and net plumbing.

    Notes
    -----
    ``data`` and ``diff`` are exposed as numpy views shaped like ``shape``
    over flat C-contiguous buffers; ``flat_data`` / ``flat_diff`` expose
    the raw 1-D storage that BLAS kernels and the paper's offset formula
    address.
    """

    def __init__(self, shape: Sequence[int] = (), name: str = "") -> None:
        self.name = name
        self._transfers_to_device = 0
        self._transfers_to_host = 0
        self._data_state = SyncState.UNINITIALIZED
        self._diff_state = SyncState.UNINITIALIZED
        self._device_data: np.ndarray | None = None
        self._device_diff: np.ndarray | None = None
        self._allocate(tuple(int(d) for d in shape))

    # ------------------------------------------------------------------
    # shape & storage
    # ------------------------------------------------------------------
    def _allocate(self, shape: Tuple[int, ...]) -> None:
        for dim in shape:
            if dim < 0:
                raise ValueError(f"blob {self.name!r}: negative dimension in {shape}")
        self._shape = shape
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        self._flat_data = np.zeros(count, dtype=DTYPE)
        self._flat_diff = np.zeros(count, dtype=DTYPE)
        self._data_state = SyncState.AT_CPU
        self._diff_state = SyncState.AT_CPU
        self._device_data = None
        self._device_diff = None

    @property
    def shape(self) -> Tuple[int, ...]:
        return self._shape

    @property
    def count(self) -> int:
        """Total number of elements of the current shape.

        May be smaller than the underlying storage after a shrinking
        reshape (the buffer is retained, Caffe-style).
        """
        return int(np.prod(self._shape, dtype=np.int64)) if self._shape else 1

    @property
    def num_axes(self) -> int:
        return len(self._shape)

    def shape_at(self, axis: int) -> int:
        """Extent along ``axis``; negative axes count from the end."""
        return self._shape[self.canonical_axis(axis)]

    def canonical_axis(self, axis: int) -> int:
        n = len(self._shape)
        if not -n <= axis < n:
            raise IndexError(
                f"blob {self.name!r}: axis {axis} out of range for {n} axes"
            )
        return axis % n

    # Caffe legacy accessors for 4-d image blobs.
    @property
    def num(self) -> int:
        return self._legacy_dim(0)

    @property
    def channels(self) -> int:
        return self._legacy_dim(1)

    @property
    def height(self) -> int:
        return self._legacy_dim(2)

    @property
    def width(self) -> int:
        return self._legacy_dim(3)

    def _legacy_dim(self, axis: int) -> int:
        if len(self._shape) > 4:
            raise ValueError(
                f"blob {self.name!r}: legacy accessor needs <= 4 axes, "
                f"have shape {self._shape}"
            )
        return self._shape[axis] if axis < len(self._shape) else 1

    def reshape(self, shape: Sequence[int]) -> "Blob":
        """Change dimensions; reallocates only when the count grows.

        Matches Caffe semantics: shrinking or reshaping within the current
        capacity preserves the underlying buffers (and their contents up to
        the new count).
        """
        new_shape = tuple(int(d) for d in shape)
        new_count = int(np.prod(new_shape, dtype=np.int64)) if new_shape else 1
        if new_count > self._flat_data.size:
            self._allocate(new_shape)
        else:
            self._shape = new_shape
        return self

    def reshape_like(self, other: "Blob") -> "Blob":
        return self.reshape(other.shape)

    # ------------------------------------------------------------------
    # indexing
    # ------------------------------------------------------------------
    def offset(self, indices: Sequence[int]) -> int:
        """Flat offset of a (possibly partial) index tuple.

        For a 4-d blob and full indices ``(n, k, h, w)`` this computes
        ``((n * K + k) * H + h) * W + w``.  Trailing indices may be
        omitted (treated as 0), mirroring ``Blob::offset`` in Caffe.
        """
        if len(indices) > len(self._shape):
            raise IndexError(
                f"blob {self.name!r}: {len(indices)} indices for "
                f"{len(self._shape)} axes"
            )
        off = 0
        for axis, extent in enumerate(self._shape):
            off *= extent
            if axis < len(indices):
                idx = indices[axis]
                if not 0 <= idx < extent:
                    raise IndexError(
                        f"blob {self.name!r}: index {idx} out of range for "
                        f"axis {axis} with extent {extent}"
                    )
                off += idx
        return off

    # ------------------------------------------------------------------
    # host accessors (trigger device -> host sync when needed)
    # ------------------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        """Host view of the value buffer, shaped like :attr:`shape`."""
        if _write_tracker is not None:
            _write_tracker.on_host_access(self, "data")
        self._sync_to_host("data")
        count = int(np.prod(self._shape, dtype=np.int64)) if self._shape else 1
        return self._flat_data[:count].reshape(self._shape)

    @property
    def diff(self) -> np.ndarray:
        """Host view of the gradient buffer, shaped like :attr:`shape`."""
        if _write_tracker is not None:
            _write_tracker.on_host_access(self, "diff")
        self._sync_to_host("diff")
        count = int(np.prod(self._shape, dtype=np.int64)) if self._shape else 1
        return self._flat_diff[:count].reshape(self._shape)

    @property
    def flat_data(self) -> np.ndarray:
        """Host view of the raw 1-D value storage (length :attr:`count`)."""
        if _write_tracker is not None:
            _write_tracker.on_host_access(self, "data")
        self._sync_to_host("data")
        count = int(np.prod(self._shape, dtype=np.int64)) if self._shape else 1
        return self._flat_data[:count]

    @property
    def flat_diff(self) -> np.ndarray:
        if _write_tracker is not None:
            _write_tracker.on_host_access(self, "diff")
        self._sync_to_host("diff")
        count = int(np.prod(self._shape, dtype=np.int64)) if self._shape else 1
        return self._flat_diff[:count]

    # ------------------------------------------------------------------
    # device protocol (used by the simulated fine-grain executor)
    # ------------------------------------------------------------------
    def device_data(self) -> np.ndarray:
        """Device-resident value buffer; copies host data over if stale."""
        if self._data_state in (SyncState.AT_CPU, SyncState.UNINITIALIZED):
            self._device_data = self.data.copy()
            self._transfers_to_device += 1
            self._data_state = SyncState.SYNCED
        elif self._device_data is None:
            raise RuntimeError(f"blob {self.name!r}: device data lost")
        return self._device_data

    def mark_device_data_dirty(self) -> None:
        """Record that a device kernel wrote the value buffer."""
        if self._device_data is None:
            raise RuntimeError(f"blob {self.name!r}: no device data to dirty")
        self._data_state = SyncState.AT_DEVICE

    def device_diff(self) -> np.ndarray:
        if self._diff_state in (SyncState.AT_CPU, SyncState.UNINITIALIZED):
            self._device_diff = self.diff.copy()
            self._transfers_to_device += 1
            self._diff_state = SyncState.SYNCED
        elif self._device_diff is None:
            raise RuntimeError(f"blob {self.name!r}: device diff lost")
        return self._device_diff

    def mark_device_diff_dirty(self) -> None:
        if self._device_diff is None:
            raise RuntimeError(f"blob {self.name!r}: no device diff to dirty")
        self._diff_state = SyncState.AT_DEVICE

    def _sync_to_host(self, which: str) -> None:
        state = self._data_state if which == "data" else self._diff_state
        if state is SyncState.AT_DEVICE:
            device = self._device_data if which == "data" else self._device_diff
            assert device is not None
            host = self._flat_data if which == "data" else self._flat_diff
            count = int(np.prod(self._shape, dtype=np.int64)) if self._shape else 1
            host[:count] = device.ravel()[:count]
            self._transfers_to_host += 1
            if which == "data":
                self._data_state = SyncState.SYNCED
            else:
                self._diff_state = SyncState.SYNCED

    def mark_host_data_dirty(self) -> None:
        """Record that host code wrote the value buffer."""
        if _write_tracker is not None:
            _write_tracker.on_host_access(self, "data")
        self._data_state = SyncState.AT_CPU

    def mark_host_diff_dirty(self) -> None:
        if _write_tracker is not None:
            _write_tracker.on_host_access(self, "diff")
        self._diff_state = SyncState.AT_CPU

    @property
    def data_state(self) -> SyncState:
        return self._data_state

    @property
    def diff_state(self) -> SyncState:
        return self._diff_state

    @property
    def transfer_counts(self) -> Tuple[int, int]:
        """``(host_to_device, device_to_host)`` transfer tallies."""
        return (self._transfers_to_device, self._transfers_to_host)

    # ------------------------------------------------------------------
    # sharing (Caffe's ShareData/ShareDiff, used by split layers)
    # ------------------------------------------------------------------
    def share_data_with(self, other: "Blob") -> None:
        """Alias this blob's value storage onto ``other``'s."""
        if self.count > other.count:
            raise ValueError(
                f"blob {self.name!r}: cannot share data with smaller blob "
                f"{other.name!r} ({self.count} > {other.count})"
            )
        self._flat_data = other._flat_data
        self._data_state = other._data_state

    def share_diff_with(self, other: "Blob") -> None:
        if self.count > other.count:
            raise ValueError(
                f"blob {self.name!r}: cannot share diff with smaller blob "
                f"{other.name!r} ({self.count} > {other.count})"
            )
        self._flat_diff = other._flat_diff
        self._diff_state = other._diff_state

    # ------------------------------------------------------------------
    # numerics helpers
    # ------------------------------------------------------------------
    def set_data(self, values: Iterable[float] | np.ndarray) -> "Blob":
        arr = np.asarray(values, dtype=DTYPE)
        if arr.size != self.count:
            raise ValueError(
                f"blob {self.name!r}: set_data got {arr.size} values for "
                f"count {self.count}"
            )
        self.flat_data[:] = arr.ravel()
        self.mark_host_data_dirty()
        return self

    def zero_data(self) -> "Blob":
        self.flat_data.fill(0.0)
        self.mark_host_data_dirty()
        return self

    def zero_diff(self) -> "Blob":
        self.flat_diff.fill(0.0)
        self.mark_host_diff_dirty()
        return self

    def asum_data(self) -> float:
        """L1 norm of the data (Caffe's ``asum_data``)."""
        return float(np.abs(self.flat_data).sum())

    def asum_diff(self) -> float:
        return float(np.abs(self.flat_diff).sum())

    def sumsq_data(self) -> float:
        d = self.flat_data
        return float(np.dot(d, d))

    def sumsq_diff(self) -> float:
        d = self.flat_diff
        return float(np.dot(d, d))

    def scale_diff(self, factor: float) -> "Blob":
        diff = self.flat_diff
        diff *= DTYPE(factor)
        self.mark_host_diff_dirty()
        return self

    def update(self) -> "Blob":
        """Apply the accumulated gradient: ``data -= diff`` (Caffe Update)."""
        data = self.flat_data
        data -= self.flat_diff
        self.mark_host_data_dirty()
        return self

    def copy_from(
        self, other: "Blob", copy_diff: bool = False, reshape: bool = False
    ) -> "Blob":
        if other.shape != self.shape:
            if not reshape:
                raise ValueError(
                    f"blob {self.name!r}: copy_from shape mismatch "
                    f"{other.shape} vs {self.shape} (pass reshape=True)"
                )
            self.reshape(other.shape)
        if copy_diff:
            self.flat_diff[:] = other.flat_diff
            self.mark_host_diff_dirty()
        else:
            self.flat_data[:] = other.flat_data
            self.mark_host_data_dirty()
        return self

    @property
    def nbytes(self) -> int:
        """Host memory footprint of both halves, in bytes."""
        return self._flat_data.nbytes + self._flat_diff.nbytes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Blob(name={self.name!r}, shape={self._shape})"
