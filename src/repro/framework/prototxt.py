"""Parser for the protobuf text format subset used by Caffe prototxt files.

Caffe network definitions are protobuf text messages ("prototext", paper
Section 2.1).  This module implements a small recursive-descent parser for
the subset those files use:

* scalar fields — ``key: value`` with string, number, boolean or enum
  values;
* message fields — ``key { ... }``;
* repetition — a key appearing multiple times accumulates into a list.

The generic parse produces nested dictionaries; :func:`parse_prototxt`
then maps the conventional Caffe schema (``layer { ... }`` entries with
``*_param`` blocks) onto :class:`~repro.framework.net_spec.NetSpec`.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Tuple

from repro.framework.net_spec import BlobLrSpec, LayerSpec, NetSpec

_TOKEN_RE = re.compile(
    r"""
    (?P<comment>\#[^\n]*)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<brace>[{}])
  | (?P<colon>:)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.]*)
  | (?P<number>[-+]?(?:\d+\.\d*|\.\d+|\d+)(?:[eE][-+]?\d+)?)
  | (?P<space>\s+)
    """,
    re.VERBOSE,
)


class PrototxtError(ValueError):
    """Raised on malformed prototxt input, with line information."""


def _tokenize(text: str) -> List[Tuple[str, str, int]]:
    tokens: List[Tuple[str, str, int]] = []
    pos = 0
    line = 1
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise PrototxtError(
                f"line {line}: unexpected character {text[pos]!r}"
            )
        kind = match.lastgroup
        value = match.group()
        if kind not in ("space", "comment"):
            tokens.append((kind, value, line))
        line += value.count("\n")
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: List[Tuple[str, str, int]]) -> None:
        self._tokens = tokens
        self._pos = 0

    @property
    def _last_line(self) -> int:
        """Line of the most recently seen token (1 for empty input)."""
        if not self._tokens:
            return 1
        return self._tokens[min(self._pos, len(self._tokens) - 1)][2]

    def _peek(self) -> Tuple[str, str, int] | None:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def _next(self) -> Tuple[str, str, int]:
        tok = self._peek()
        if tok is None:
            raise PrototxtError(
                f"line {self._last_line}: unexpected end of input"
            )
        self._pos += 1
        return tok

    def parse_message(self, stop_at_brace: bool) -> Dict[str, Any]:
        """Parse fields until EOF or a closing brace."""
        message: Dict[str, Any] = {}
        while True:
            tok = self._peek()
            if tok is None:
                if stop_at_brace:
                    raise PrototxtError(
                        f"line {self._last_line}: unterminated message: "
                        "missing '}'"
                    )
                return message
            kind, value, line = tok
            if kind == "brace" and value == "}":
                if not stop_at_brace:
                    raise PrototxtError(f"line {line}: unmatched '}}'")
                self._next()
                return message
            if kind != "ident":
                raise PrototxtError(
                    f"line {line}: expected a field name, got {value!r}"
                )
            self._next()
            key = value
            self._parse_field_value(message, key)

    def _parse_field_value(self, message: Dict[str, Any], key: str) -> None:
        tok = self._peek()
        if tok is None:
            raise PrototxtError(
                f"line {self._last_line}: field {key!r}: unexpected end "
                "of input"
            )
        kind, value, line = tok
        if kind == "colon":
            self._next()
            parsed = self._parse_scalar(key)
        elif kind == "brace" and value == "{":
            self._next()
            parsed = self.parse_message(stop_at_brace=True)
        else:
            raise PrototxtError(
                f"line {line}: field {key!r} must be followed by ':' or '{{'"
            )
        _accumulate(message, key, parsed)

    def _parse_scalar(self, key: str) -> Any:
        kind, value, line = self._next()
        if kind == "string":
            return _unescape(value[1:-1])
        if kind == "number":
            if re.fullmatch(r"[-+]?\d+", value):
                return int(value)
            return float(value)
        if kind == "ident":
            lowered = value.lower()
            if lowered == "true":
                return True
            if lowered == "false":
                return False
            return value  # enum constant, e.g. MAX, TRAIN, LMDB
        raise PrototxtError(
            f"line {line}: field {key!r} has invalid value {value!r}"
        )


def _unescape(raw: str) -> str:
    return raw.encode("utf-8").decode("unicode_escape")


def _accumulate(message: Dict[str, Any], key: str, value: Any) -> None:
    if key in message:
        existing = message[key]
        if isinstance(existing, list):
            existing.append(value)
        else:
            message[key] = [existing, value]
    else:
        message[key] = value


def parse_text(text: str) -> Dict[str, Any]:
    """Parse protobuf text format into nested dictionaries."""
    return _Parser(_tokenize(text)).parse_message(stop_at_brace=False)


def _as_list(value: Any) -> List[Any]:
    if value is None:
        return []
    return value if isinstance(value, list) else [value]


_PARAM_SUFFIX = "_param"


def _layer_spec_from_message(msg: Dict[str, Any]) -> LayerSpec:
    name = msg.get("name")
    if not name:
        raise PrototxtError("layer block is missing 'name'")
    type_name = msg.get("type")
    if not type_name:
        raise PrototxtError(f"layer {name!r} is missing 'type'")

    params: Dict[str, Any] = {}
    for key, value in msg.items():
        if key.endswith(_PARAM_SUFFIX) and isinstance(value, dict):
            params.update(value)

    phase = None
    include = msg.get("include")
    if include is not None:
        phases = [blk.get("phase") for blk in _as_list(include) if isinstance(blk, dict)]
        phases = [p for p in phases if p]
        if len(phases) == 1:
            phase = str(phases[0]).upper()
        elif len(phases) > 1:
            raise PrototxtError(
                f"layer {name!r}: multiple include phases are not supported"
            )

    param_specs = []
    for blk in _as_list(msg.get("param")):
        if isinstance(blk, dict):
            param_specs.append(
                BlobLrSpec(
                    lr_mult=float(blk.get("lr_mult", 1.0)),
                    decay_mult=float(blk.get("decay_mult", 1.0)),
                )
            )

    loss_weight = msg.get("loss_weight")
    return LayerSpec(
        name=str(name),
        type=str(type_name),
        bottoms=[str(b) for b in _as_list(msg.get("bottom"))],
        tops=[str(t) for t in _as_list(msg.get("top"))],
        params=params,
        phase=phase,
        param_specs=param_specs,
        loss_weight=float(loss_weight) if loss_weight is not None else None,
    )


def parse_prototxt(text: str, validate: bool = True) -> NetSpec:
    """Parse a Caffe network prototxt into a :class:`NetSpec`.

    ``validate=False`` skips :meth:`NetSpec.validate`, so deliberately
    broken graphs still parse — the netcheck linter uses this to turn
    structural errors into coded findings instead of a parse abort.
    """
    root = parse_text(text)
    spec = NetSpec(name=str(root.get("name", "")))
    for msg in _as_list(root.get("layer")):
        if not isinstance(msg, dict):
            raise PrototxtError("'layer' fields must be message blocks")
        spec.layers.append(_layer_spec_from_message(msg))
    for input_name in _as_list(root.get("input")):
        spec.inputs.append(str(input_name))
    for shape_blk in _as_list(root.get("input_shape")):
        if isinstance(shape_blk, dict):
            spec.input_shapes.append([int(d) for d in _as_list(shape_blk.get("dim"))])
    if validate:
        spec.validate()
    return spec
