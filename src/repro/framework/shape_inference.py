"""Symbolic shape/dtype inference rules for the layer zoo.

The net graph's blob shapes are fully determined by the layer parameters
(paper Section 3: the coalesced iteration space and blob layouts are
derivable before a single sample is processed), yet historically they
only existed after :class:`~repro.framework.net.Net` instantiated layers
and allocated blobs.  This module closes that gap: every layer module
registers one **inference rule** — a pure function from the layer's
:class:`~repro.framework.net_spec.LayerSpec` and the symbolic shapes of
its bottoms to the symbolic shapes of its tops — with no layer
instantiation, no parameter filling and no blob allocation.

Rules are registered alongside the layer classes (same module, same
import side effect), so importing :mod:`repro.framework.layers` loads
both registries in lockstep.  The consumer is
:mod:`repro.analysis.netcheck`, which walks a spec DAG through these
rules to produce shape tables, lint findings and the static schedule /
memory plan.

A rule may additionally report:

* ``forward_space`` — the coalesced forward iteration count, mirroring
  :meth:`Layer.forward_space` symbolically (defaults to the batch
  extent of the first bottom, the base-class rule);
* ``param_shapes`` — shapes of the parameter blobs the layer would
  create, for static memory accounting;
* ``notes`` — ``(kind, message)`` diagnostics for legal-but-lossy
  geometry (e.g. a conv stride that drops boundary pixels).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.framework.net_spec import LayerSpec

#: dtype name of every runtime blob (single precision, blob.py DTYPE).
FLOAT = "float32"

#: Note kinds a rule may attach (netcheck maps them to lint codes).
NOTE_DROPPED_PIXELS = "dropped-pixels"
NOTE_SKIPPED_PIXELS = "skipped-pixels"


class ShapeError(ValueError):
    """A layer's bottoms are incompatible with its parameters."""


@dataclass(frozen=True)
class BlobInfo:
    """Symbolic stand-in for a :class:`~repro.framework.blob.Blob`."""

    shape: Tuple[int, ...]
    dtype: str = FLOAT

    @property
    def num_axes(self) -> int:
        return len(self.shape)

    @property
    def count(self) -> int:
        n = 1
        for dim in self.shape:
            n *= dim
        return n

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BlobInfo({self.shape}, {self.dtype})"


@dataclass
class RuleResult:
    """Everything a rule can tell the checker about one layer."""

    tops: List[BlobInfo]
    forward_space: Optional[int] = None
    param_shapes: List[Tuple[int, ...]] = field(default_factory=list)
    notes: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def param_count(self) -> int:
        total = 0
        for shape in self.param_shapes:
            n = 1
            for dim in shape:
                n *= dim
            total += n
        return total


RuleFn = Callable[[LayerSpec, Sequence[BlobInfo]], "RuleResult | List[BlobInfo]"]


@dataclass(frozen=True)
class ShapeRule:
    """A registered inference rule plus its protocol flags."""

    fn: RuleFn
    type_names: Tuple[str, ...]
    #: The layer tolerates ``top == bottom`` (chunk-write protocol: the
    #: pass reads an element only from the iteration that owns it).
    inplace_ok: bool = False
    #: The layer's top is a terminal output (loss/accuracy scalar) that
    #: is legitimately never consumed downstream.
    terminal_ok: bool = False
    #: The layer executes as a single sequential chunk (data feeders).
    sequential: bool = False


_SHAPE_RULES: Dict[str, ShapeRule] = {}


def register_shape_rule(
    *type_names: str,
    inplace_ok: bool = False,
    terminal_ok: bool = False,
    sequential: bool = False,
) -> Callable[[RuleFn], RuleFn]:
    """Decorator registering an inference rule for one or more types."""

    def decorator(fn: RuleFn) -> RuleFn:
        rule = ShapeRule(
            fn=fn,
            type_names=tuple(type_names),
            inplace_ok=inplace_ok,
            terminal_ok=terminal_ok,
            sequential=sequential,
        )
        for type_name in type_names:
            key = type_name.lower()
            if key in _SHAPE_RULES:
                raise ValueError(
                    f"shape rule for {type_name!r} registered twice"
                )
            _SHAPE_RULES[key] = rule
        return fn

    return decorator


def shape_rule_for(type_name: str) -> Optional[ShapeRule]:
    """The registered rule for a layer type, or None."""
    return _SHAPE_RULES.get(type_name.lower())


def registered_shape_rule_types() -> List[str]:
    return sorted(_SHAPE_RULES)


def infer_layer(spec: LayerSpec, bottoms: Sequence[BlobInfo]) -> RuleResult:
    """Run the registered rule for ``spec.type``.

    Raises :class:`ShapeError` when bottoms are incompatible, KeyError
    when the layer type has no rule, and normalizes bare top lists into
    a :class:`RuleResult` with the base-class forward space (the batch
    extent of the first bottom, or 1).
    """
    rule = shape_rule_for(spec.type)
    if rule is None:
        raise KeyError(f"no shape rule for layer type {spec.type!r}")
    result = rule.fn(spec, list(bottoms))
    if not isinstance(result, RuleResult):
        result = RuleResult(tops=list(result))
    if result.forward_space is None:
        if rule.sequential:
            result.forward_space = 1
        elif bottoms and bottoms[0].num_axes:
            result.forward_space = bottoms[0].shape[0]
        else:
            result.forward_space = 1
    return result


# ---------------------------------------------------------------------------
# shared geometry helpers used by several rules
# ---------------------------------------------------------------------------
def require_axes(spec: LayerSpec, blob: BlobInfo, axes: int) -> None:
    if blob.num_axes != axes:
        raise ShapeError(
            f"layer {spec.name!r} ({spec.type}) needs a {axes}-d bottom, "
            f"got shape {blob.shape}"
        )


def canonical_axis(spec: LayerSpec, blob: BlobInfo, axis: int) -> int:
    n = blob.num_axes
    if not -n <= axis < n:
        raise ShapeError(
            f"layer {spec.name!r}: axis {axis} out of range for "
            f"{n}-d shape {blob.shape}"
        )
    return axis % n
