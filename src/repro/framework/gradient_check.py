"""Numerical gradient checking (Caffe's ``GradientChecker``).

Verifies a layer's analytic backward pass against central-difference
numerical gradients of a scalar objective built from the top blobs.  Used
throughout the test suite; exposed as library API because downstream
users writing new layers need it for exactly the reason the paper calls
the framework "research oriented".
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.framework.blob import Blob
from repro.framework.layer import Layer


class GradientCheckError(AssertionError):
    """Raised when analytic and numerical gradients disagree."""


def _objective(top: Sequence[Blob], weights: List[np.ndarray]) -> float:
    """A deterministic scalar of the top data: sum(w * top) per blob.

    Random-looking but fixed weights make the check sensitive to every
    output element (a plain sum would miss sign errors that cancel).
    """
    total = 0.0
    for blob, w in zip(top, weights):
        total += float(np.dot(blob.flat_data.astype(np.float64), w))
    return total


def check_gradient(
    layer: Layer,
    bottom: Sequence[Blob],
    top: Sequence[Blob],
    *,
    check_bottom: Optional[Sequence[int]] = None,
    step: float = 1e-2,
    threshold: float = 1e-2,
    seed: int = 7,
) -> None:
    """Compare analytic and numerical gradients of ``layer``.

    Parameters
    ----------
    check_bottom:
        Indices of bottom blobs to differentiate with respect to
        (default: all).  Parameter blobs are always checked.
    step:
        Central-difference step.
    threshold:
        Maximum allowed ``|analytic - numeric| / max(scale, 1)`` where
        ``scale`` is the magnitude of the two estimates.

    Raises
    ------
    GradientCheckError
        On the first element whose gradients disagree.
    """
    rng = np.random.default_rng(seed)
    layer.setup(bottom, top)
    layer.forward(bottom, top)
    weights = [
        rng.standard_normal(t.count).astype(np.float64) for t in top
    ]

    # Analytic pass: seed top diffs with the objective's gradient.
    for t, w in zip(top, weights):
        t.flat_diff[:] = w.astype(np.float32)
        t.mark_host_diff_dirty()
    for blob in layer.blobs:
        blob.zero_diff()
    if check_bottom is None:
        check_bottom = list(range(len(bottom)))
    propagate = [i in check_bottom for i in range(len(bottom))]
    layer.backward(top, propagate, bottom)

    targets = []
    for i in check_bottom:
        targets.append((f"bottom[{i}]", bottom[i]))
    for i, blob in enumerate(layer.blobs):
        targets.append((f"param[{i}]", blob))

    analytic = {label: blob.flat_diff.copy() for label, blob in targets}

    for label, blob in targets:
        data = blob.flat_data
        for index in range(blob.count):
            original = float(data[index])
            data[index] = original + step
            blob.mark_host_data_dirty()
            layer.forward(bottom, top)
            plus = _objective(top, weights)
            data[index] = original - step
            blob.mark_host_data_dirty()
            layer.forward(bottom, top)
            minus = _objective(top, weights)
            data[index] = original
            blob.mark_host_data_dirty()
            numeric = (plus - minus) / (2.0 * step)
            estimate = float(analytic[label][index])
            scale = max(abs(numeric), abs(estimate), 1.0)
            if abs(numeric - estimate) / scale > threshold:
                raise GradientCheckError(
                    f"layer {layer.name!r} {label}[{index}]: analytic "
                    f"{estimate:.6g} vs numeric {numeric:.6g} "
                    f"(threshold {threshold})"
                )
    # Restore a clean forward state.
    layer.forward(bottom, top)
