"""Declarative network specification objects.

A :class:`NetSpec` is the in-memory form of a parsed prototxt network
definition: an ordered list of :class:`LayerSpec` entries, each naming the
layer type, its bottom/top blob names, phase restrictions and a free-form
parameter dictionary (the ``*_param`` blocks of the prototxt).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


@dataclass
class BlobLrSpec:
    """Per-parameter learning-rate / weight-decay multipliers (Caffe's
    ``ParamSpec``: ``param { lr_mult: ... decay_mult: ... }``)."""

    lr_mult: float = 1.0
    decay_mult: float = 1.0


@dataclass
class LayerSpec:
    """One layer entry of a network definition."""

    name: str
    type: str
    bottoms: List[str] = field(default_factory=list)
    tops: List[str] = field(default_factory=list)
    params: Dict[str, Any] = field(default_factory=dict)
    phase: Optional[str] = None  # None = both phases, else "TRAIN" / "TEST"
    param_specs: List[BlobLrSpec] = field(default_factory=list)
    loss_weight: Optional[float] = None

    def param(self, key: str, default: Any = None) -> Any:
        """Look up a parameter with a default, e.g. ``spec.param("num_output")``."""
        return self.params.get(key, default)

    def require(self, key: str) -> Any:
        if key not in self.params:
            raise KeyError(
                f"layer {self.name!r} (type {self.type}) is missing required "
                f"parameter {key!r}"
            )
        return self.params[key]


@dataclass
class NetSpec:
    """A full network definition."""

    name: str = ""
    layers: List[LayerSpec] = field(default_factory=list)
    inputs: List[str] = field(default_factory=list)
    input_shapes: List[Sequence[int]] = field(default_factory=list)

    def layer(self, name: str) -> LayerSpec:
        for spec in self.layers:
            if spec.name == name:
                return spec
        raise KeyError(f"network {self.name!r} has no layer named {name!r}")

    def layers_for_phase(self, phase: str) -> List[LayerSpec]:
        """Layers active in ``phase`` (``"TRAIN"`` or ``"TEST"``)."""
        if phase not in ("TRAIN", "TEST"):
            raise ValueError(f"phase must be TRAIN or TEST, got {phase!r}")
        return [s for s in self.layers if s.phase in (None, phase)]

    def validate(self) -> None:
        """Check structural sanity: every declared input carries a shape,
        per-phase unique names, no dangling bottoms.  A name may repeat
        across phases (Caffe's TRAIN/TEST data layers conventionally
        share one)."""
        if len(self.inputs) > len(self.input_shapes):
            missing = ", ".join(
                repr(name) for name in self.inputs[len(self.input_shapes):]
            )
            raise ValueError(
                f"net declares {len(self.inputs)} input(s) but only "
                f"{len(self.input_shapes)} input_shape(s); inputs without "
                f"a shape: {missing}"
            )
        for phase in ("TRAIN", "TEST"):
            seen_names = set()
            for spec in self.layers_for_phase(phase):
                if spec.name in seen_names:
                    raise ValueError(
                        f"duplicate layer name {spec.name!r} in phase {phase}"
                    )
                seen_names.add(spec.name)
            available = set(self.inputs)
            for spec in self.layers_for_phase(phase):
                for bottom in spec.bottoms:
                    if bottom not in available:
                        raise ValueError(
                            f"layer {spec.name!r} consumes blob {bottom!r} "
                            f"which no earlier layer produces (phase {phase})"
                        )
                available.update(spec.tops)
