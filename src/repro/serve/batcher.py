"""Dynamic batch formation: size- and deadline-triggered flushes.

The flush decision is a pure function of (queue state, now) with no
hidden wall-clock reads, so the deadline-vs-size race is unit-testable
at exact virtual instants:

* **size trigger** — the queue holds at least ``max_batch`` live
  entries: flush a full batch immediately (latency is already paid for;
  waiting longer can only time requests out).
* **deadline trigger** — the *oldest* queued entry has waited
  ``max_delay``, or its absolute deadline is within ``margin`` of now:
  flush whatever is queued as a partial batch (the degradation ladder's
  "partial-batch" rung — a padded batch costs compute, a timeout costs
  a client).

When both triggers hold at the same instant the size trigger wins and
the batch is the full FIFO prefix — same outcome either way, asserted
by the flush-race test.
"""

from __future__ import annotations

from typing import List, Optional

from repro.serve.admission import AdmissionController
from repro.serve.pit import _Entry


class DynamicBatcher:
    """Decides when the queue becomes a batch, and takes it."""

    def __init__(self, max_batch: int, max_delay: float,
                 margin: float = 0.0) -> None:
        if max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        if max_delay < 0 or margin < 0:
            raise ValueError("max_delay and margin must be non-negative")
        self.max_batch = max_batch
        self.max_delay = max_delay
        self.margin = margin

    # -- flush predicate ----------------------------------------------
    def should_flush(self, admission: AdmissionController,
                     now: float) -> bool:
        depth = admission.depth()
        if depth == 0:
            return False
        if depth >= self.max_batch:
            return True
        oldest = admission.queue.peek_oldest()
        if oldest is None:
            return False
        waited = now - oldest.request.submitted_at
        if waited >= self.max_delay:
            return True
        return oldest.request.deadline - self.margin <= now

    def next_flush_at(self, admission: AdmissionController,
                      now: float) -> Optional[float]:
        """The earliest future instant a deadline trigger could fire
        (the dispatcher's wake-up hint); None when the queue is empty."""
        oldest = admission.queue.peek_oldest()
        if oldest is None:
            return None
        by_delay = oldest.request.submitted_at + self.max_delay
        by_deadline = oldest.request.deadline - self.margin
        return max(now, min(by_delay, by_deadline))

    # -- batch formation ----------------------------------------------
    def take_batch(self, admission: AdmissionController,
                   now: float) -> List[_Entry]:
        """Form the next batch if a trigger fired; [] otherwise.

        Entries the PIT already answered (deadline-evicted while
        queued) are purged first so they never occupy a batch slot.
        """
        admission.queue.prune(lambda entry: not entry.delivered)
        if not self.should_flush(admission, now):
            return []
        return admission.queue.pop_upto(self.max_batch)
