"""Recorded request traces: deterministic generation, save/load, replay.

A trace is the serving analogue of a seeded training run: arrival
offsets, latency budgets and per-request sample seeds are all derived
from one integer seed, so the servecheck certifier and the bench_serve
load generator replay the *identical* request stream — healthy and
under chaos — without storing any sample bytes (samples regenerate from
their seeds on demand).
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.framework.blob import DTYPE
from repro.serve.clock import ManualClock

TRACE_FORMAT = "repro-trace/1"


@dataclass(frozen=True)
class TraceEvent:
    """One recorded arrival."""

    index: int
    request_id: str
    offset: float        # seconds after trace start
    budget: float        # relative latency budget
    sample_seed: int


class RequestTrace:
    """An ordered, seeded stream of inference arrivals."""

    def __init__(self, events: List[TraceEvent],
                 sample_shape: Tuple[int, ...], seed: int) -> None:
        self.events = list(events)
        self.sample_shape = tuple(int(d) for d in sample_shape)
        self.seed = seed

    def __len__(self) -> int:
        return len(self.events)

    @classmethod
    def generate(
        cls,
        n: int,
        sample_shape: Tuple[int, ...],
        seed: int = 0,
        mean_interarrival: float = 0.002,
        budget: float = 0.5,
    ) -> "RequestTrace":
        """Deterministic open-loop arrival process: inter-arrival gaps
        jitter uniformly in [0.5, 1.5] of the mean, budgets are fixed."""
        rng = random.Random(seed)
        events: List[TraceEvent] = []
        offset = 0.0
        for index in range(n):
            offset += rng.uniform(0.5, 1.5) * mean_interarrival
            events.append(TraceEvent(
                index=index,
                request_id=f"t{seed}-{index}",
                offset=offset,
                budget=budget,
                sample_seed=rng.randrange(2 ** 31),
            ))
        return cls(events, sample_shape, seed)

    def sample_for(self, event: TraceEvent) -> np.ndarray:
        """Regenerate the event's sample bytes from its seed."""
        gen = np.random.default_rng(event.sample_seed)
        return gen.random(self.sample_shape, dtype=np.float32).astype(DTYPE)

    # -- persistence ---------------------------------------------------
    def save(self, path: str) -> None:
        doc = {
            "format": TRACE_FORMAT,
            "seed": self.seed,
            "sample_shape": list(self.sample_shape),
            "events": [asdict(e) for e in self.events],
        }
        with open(path, "w") as handle:
            json.dump(doc, handle, indent=1, sort_keys=True)

    @classmethod
    def load(cls, path: str) -> "RequestTrace":
        with open(path) as handle:
            doc = json.load(handle)
        if doc.get("format") != TRACE_FORMAT:
            raise ValueError(
                f"{path!r} is not a {TRACE_FORMAT} trace "
                f"(format={doc.get('format')!r})"
            )
        events = [TraceEvent(**e) for e in doc["events"]]
        return cls(events, tuple(doc["sample_shape"]), int(doc["seed"]))


def replay_trace(
    server,
    trace: RequestTrace,
    chaos=None,
    drain_timeout: float = 60.0,
    hooks: Optional[Dict[int, Callable[[], None]]] = None,
) -> List[str]:
    """Replay ``trace`` against a pumped server in virtual time.

    The server's clock must be a :class:`ManualClock`; the replay
    advances it to each arrival offset, pumps, submits (with the chaos
    harness poisoning samples and raising request storms where the
    FaultPlan says so), runs any per-index hook (e.g. a hot reload),
    then drains.  Returns every submitted request id — the certifier's
    ground truth for the zero-lost/zero-duplicated audit.
    """
    clock = server.clock
    if not isinstance(clock, ManualClock):
        raise TypeError(
            "replay_trace needs a ManualClock-driven server "
            f"(got {type(clock).__name__}); deterministic certification "
            "cannot read wall-clock"
        )
    t0 = clock.now()
    submitted: List[str] = []
    for event in trace.events:
        clock.advance_to(t0 + event.offset)
        server.pump()
        sample = trace.sample_for(event)
        if chaos is not None:
            sample = chaos.poison_sample(event.index, sample)
        server.submit(sample, budget=event.budget,
                      request_id=event.request_id)
        submitted.append(event.request_id)
        if chaos is not None:
            for burst in range(chaos.storm_count(event.index)):
                storm_id = f"{event.request_id}::storm{burst}"
                server.submit(trace.sample_for(event), budget=event.budget,
                              request_id=storm_id)
                submitted.append(storm_id)
        if hooks and event.index in hooks:
            hooks[event.index]()
    if not server.drain(timeout=drain_timeout):
        raise RuntimeError(
            f"replay failed to drain: {server.pit.pending_count()} "
            "requests still pending after the timeout"
        )
    return submitted
