"""Pending-request table: deadlines, eviction, idempotent delivery.

The PiCN-style pending-interest table adapted to inference serving:
every admitted request parks here until exactly one coded response is
delivered for it.  Three invariants, each load-bearing for the
servecheck certification gate:

* **Single delivery** — :meth:`PendingRequestTable.deliver` is
  idempotent: the first response for a request id wins, every later
  attempt is suppressed and counted (``duplicates_suppressed``).  This
  is what makes crash-replay safe: if a worker team dies mid-batch and
  the supervisor replays the batch, a straggling first attempt can
  never double-answer a client (SV102).
* **Deadline eviction** — :meth:`evict_expired` walks a
  ``(deadline, seq)`` min-heap and delivers a coded ``timeout``
  response to every request whose deadline has passed; eviction order
  is deadline order, ties broken by arrival sequence.
* **No unbounded growth** — delivered-id memory (the duplicate
  suppressor) is a bounded LRU; heap nodes for delivered entries are
  dropped lazily on pop.

All waits on the client side go through :class:`Handle`, whose
``result()`` requires an explicit timeout (SV002: no unbounded blocking
in the serve path).
"""

from __future__ import annotations

import heapq
import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Optional

from repro.serve.request import (
    STATUS_TIMEOUT,
    InferenceRequest,
    InferenceResponse,
)


class _Entry:
    """One pending request: the heap node and the client's rendezvous."""

    __slots__ = ("request", "seq", "event", "response", "delivered")

    def __init__(self, request: InferenceRequest, seq: int) -> None:
        self.request = request
        self.seq = seq
        self.event = threading.Event()
        self.response: Optional[InferenceResponse] = None
        self.delivered = False

    def __lt__(self, other: "_Entry") -> bool:
        return (self.request.deadline, self.seq) < (
            other.request.deadline, other.seq
        )


class Handle:
    """Client-side future for one request's single response."""

    def __init__(self, entry: _Entry) -> None:
        self._entry = entry

    @property
    def request_id(self) -> str:
        return self._entry.request.request_id

    @property
    def done(self) -> bool:
        return self._entry.event.is_set()

    def response(self) -> Optional[InferenceResponse]:
        """The delivered response, or ``None`` while still pending."""
        return self._entry.response if self._entry.event.is_set() else None

    def result(self, timeout: float) -> InferenceResponse:
        """Block (bounded) for the response; raises ``TimeoutError`` if
        it has not arrived within ``timeout`` real seconds."""
        if not self._entry.event.wait(timeout=timeout):
            raise TimeoutError(
                f"request {self.request_id!r}: no response within "
                f"{timeout}s (server stalled or deadline budget "
                "misconfigured)"
            )
        response = self._entry.response
        assert response is not None
        return response


class PendingRequestTable:
    """The table of in-flight requests, keyed by request id."""

    def __init__(
        self,
        on_deliver: Optional[Callable[[InferenceResponse], None]] = None,
        done_capacity: int = 4096,
    ) -> None:
        if done_capacity <= 0:
            raise ValueError(f"done_capacity must be positive, "
                             f"got {done_capacity}")
        self._lock = threading.Lock()
        self._entries: Dict[str, _Entry] = {}
        self._heap: List[_Entry] = []
        self._seq = 0
        self._done: "OrderedDict[str, str]" = OrderedDict()  # id -> status
        self._done_capacity = done_capacity
        self.on_deliver = on_deliver
        self.duplicates_suppressed = 0
        self.delivered_counts: Dict[str, int] = {}

    # -- registration --------------------------------------------------
    def add(self, request: InferenceRequest) -> Handle:
        """Register a request; returns the client's :class:`Handle`.

        A request id that is already pending (or already answered and
        still in duplicate-suppression memory) is a client protocol
        violation and raises ``ValueError`` — ids are the idempotency
        key, so reusing one would make "exactly once" unverifiable.
        """
        with self._lock:
            rid = request.request_id
            if rid in self._entries or rid in self._done:
                raise ValueError(f"request id {rid!r} already in flight "
                                 "or recently answered")
            entry = _Entry(request, self._seq)
            self._seq += 1
            self._entries[rid] = entry
            heapq.heappush(self._heap, entry)
            return Handle(entry)

    # -- delivery ------------------------------------------------------
    def deliver(self, response: InferenceResponse) -> bool:
        """Deliver the final response for a request id (idempotent).

        Returns True if this call won (the client sees *this* response);
        False if a response was already delivered — the duplicate is
        suppressed and counted, never surfaced to the client.
        """
        rid = response.request_id
        with self._lock:
            entry = self._entries.pop(rid, None)
            if entry is None:
                self.duplicates_suppressed += 1
                return False
            entry.response = response
            entry.delivered = True
            self._done[rid] = response.status
            self._done.move_to_end(rid)
            while len(self._done) > self._done_capacity:
                self._done.popitem(last=False)
            self.delivered_counts[response.status] = (
                self.delivered_counts.get(response.status, 0) + 1
            )
        # Wake the client and notify observers outside the lock: the
        # callback is arbitrary harness code and must not run under the
        # table's mutex.
        entry.event.set()
        if self.on_deliver is not None:
            self.on_deliver(response)
        return True

    # -- eviction ------------------------------------------------------
    def evict_expired(self, now: float) -> List[InferenceResponse]:
        """Time out every entry whose deadline has passed (deadline
        order, ties by arrival sequence).  A request is live through its
        deadline instant: eviction requires ``now > deadline``."""
        expired: List[_Entry] = []
        with self._lock:
            while self._heap:
                head = self._heap[0]
                if head.delivered:
                    heapq.heappop(self._heap)  # lazy-deleted node
                    continue
                if head.request.deadline >= now:
                    break
                expired.append(heapq.heappop(self._heap))
        responses = []
        for entry in expired:
            response = InferenceResponse(
                request_id=entry.request.request_id,
                status=STATUS_TIMEOUT,
                detail=(
                    f"deadline {entry.request.deadline:.6f} passed at "
                    f"{now:.6f} before a batch completed"
                ),
                completed_at=now,
                latency=now - entry.request.submitted_at,
            )
            if self.deliver(response):
                responses.append(response)
        return responses

    # -- introspection -------------------------------------------------
    def pending_count(self) -> int:
        with self._lock:
            return len(self._entries)

    def is_pending(self, request_id: str) -> bool:
        with self._lock:
            return request_id in self._entries

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "pending": len(self._entries),
                "delivered": dict(self.delivered_counts),
                "duplicates_suppressed": self.duplicates_suppressed,
            }
