"""The inference engine: batched TEST-phase execution with recovery.

One engine owns one TEST-phase :class:`~repro.framework.net.Net` and one
:class:`~repro.core.parallel_net.ParallelExecutor` (ThreadTeam inside,
plancheck plan honored when given).  The server hands it a formed batch
of raw samples; the engine:

1. **quarantines poisoned inputs** — any sample carrying NaN/Inf is
   demoted to a coded per-request error and its batch row zeroed, so
   one malformed payload cannot poison its batch-mates (the HealthGuard
   sentinel idea applied per-sample instead of per-iteration);
2. **stages** the (zero-padded) batch into the net's data layers via
   :class:`StagedSource` — staging is idempotent, so a retry replays
   the *identical* bytes;
3. **executes** the forward pass, and on a worker fault restarts the
   crashed thread team (:meth:`~repro.core.team.ThreadTeam.restart`)
   and retries with exponential backoff through the injected clock —
   the batch is replayed, and the pending-table's idempotent delivery
   upstream makes the replay exactly-once from the client's view;
4. **quarantines poisoned outputs** — a non-finite logits row becomes a
   coded error rather than a served lie;
5. **logs** the exact batch composition (request ids + staged images)
   so the servecheck certifier can re-run every served batch through
   plain sequential ``Net.forward`` and demand bitwise parity.

Hot reload (:meth:`InferenceEngine.reload`) parses and validates the
new parameters *before* taking the engine lock, then swaps under it —
the in-flight batch drains first, and a failed validation leaves the
old parameters untouched (atomic swap).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.parallel_net import ParallelExecutor
from repro.core.team import WorkerError
from repro.framework.blob import DTYPE
from repro.resilience.checkpoint import (
    MAGIC,
    CheckpointMismatch,
    checked_load,
    load_npz_verified,
)
from repro.resilience.faults import InjectedFault
from repro.serve.clock import Clock, MonotonicClock


class EngineFault(RuntimeError):
    """The executor kept failing after every retry; the batch's requests
    get coded ``error`` responses (never silence)."""

    def __init__(self, message: str, attempts: int) -> None:
        super().__init__(message)
        self.attempts = attempts


class StagedSource:
    """A batch source whose next batch is staged explicitly.

    Replaces a data layer's streaming source for serving: ``stage()``
    parks one batch, every ``next_batch`` call returns exactly those
    bytes (idempotent — a crash-retry of the forward pass re-reads the
    identical batch).  Implements the cursor protocol
    (``get_state``/``set_state``) like every other batch source.
    """

    def __init__(self, shape: Tuple[int, ...]) -> None:
        self.shape = tuple(int(d) for d in shape)
        self._images: Optional[np.ndarray] = None
        self._labels: Optional[np.ndarray] = None
        self.batches_served = 0

    def stage(self, images: np.ndarray,
              labels: Optional[np.ndarray] = None) -> None:
        images = np.asarray(images, dtype=DTYPE)
        if images.shape[1:] != self.shape:
            raise ValueError(
                f"staged sample shape {images.shape[1:]} != source "
                f"shape {self.shape}"
            )
        self._images = images
        self._labels = (np.zeros(images.shape[0], dtype=DTYPE)
                        if labels is None
                        else np.asarray(labels, dtype=DTYPE))

    def next_batch(self, batch_size: int):
        if self._images is None:
            raise RuntimeError("no batch staged")
        if len(self._images) != batch_size:
            raise ValueError(
                f"staged batch holds {len(self._images)} samples, "
                f"data layer asked for {batch_size}"
            )
        self.batches_served += 1
        return self._images, self._labels

    def get_state(self) -> Dict[str, int]:
        return {"batches_served": self.batches_served}

    def set_state(self, state: Dict[str, int]) -> None:
        self.batches_served = int(state["batches_served"])


@dataclass(frozen=True)
class BatchRecord:
    """What the certifier needs to replay one served batch bit-exactly."""

    batch_index: int
    request_ids: Tuple[Optional[str], ...]   # None = padding row
    images: np.ndarray                        # staged (max_batch, C, H, W)


@dataclass
class BatchResult:
    """Per-row outcome of one executed batch."""

    batch_index: int
    outputs: List[Optional[np.ndarray]]   # logits row, or None if quarantined
    quarantined_input: List[int]
    quarantined_output: List[int]
    attempts: int
    restarts: int
    completed_at: float


def _swap_in_staged_sources(net, max_batch: int) -> List[StagedSource]:
    """Replace every data layer's source with a StagedSource at the
    serving batch size; returns the staged sources (usually one)."""
    staged: List[StagedSource] = []
    for layer in net.layers:
        source = getattr(layer, "source", None)
        if source is None or not hasattr(layer, "batch_size"):
            continue
        replacement = StagedSource(tuple(source.shape))
        layer.source = replacement
        layer.batch_size = max_batch
        staged.append(replacement)
    if not staged:
        raise ValueError(
            "net has no source-backed data layer to serve through"
        )
    return staged


def _resolve_output_blob(net, output_blob: Optional[str]):
    """The logits blob: named explicitly, or the loss layer's bottom."""
    if output_blob is not None:
        return net.blob(output_blob)
    for layer, bottom in zip(net.layers, net.bottoms):
        if any(layer.loss_weights) and bottom:
            return bottom[0]
    raise ValueError(
        "cannot infer the output blob (no loss layer with a bottom); "
        "pass output_blob= explicitly"
    )


class InferenceEngine:
    """Executes formed batches on the parallel runtime, with recovery."""

    def __init__(
        self,
        net_factory,
        num_threads: int = 1,
        max_batch: int = 8,
        clock: Optional[Clock] = None,
        plan=None,
        reduction: str = "blockwise",
        output_blob: Optional[str] = None,
        max_retries: int = 2,
        backoff_s: float = 0.005,
        record_batches: bool = True,
    ) -> None:
        if max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.net_factory = net_factory
        self.clock = clock if clock is not None else MonotonicClock()
        self.max_batch = max_batch
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.record_batches = record_batches
        self.net = net_factory()
        self._staged = _swap_in_staged_sources(self.net, max_batch)
        self.sample_shape = self._staged[0].shape
        self.executor = ParallelExecutor(
            num_threads=num_threads, reduction=reduction, plan=plan,
        )
        self._output = _resolve_output_blob(self.net, output_blob)
        self._engine_lock = threading.Lock()
        self.batches_executed = 0
        self.restarts = 0
        self.reloads = 0
        self.batch_log: List[BatchRecord] = []

    # -- execution -----------------------------------------------------
    def run_batch(
        self,
        samples: Sequence[np.ndarray],
        request_ids: Optional[Sequence[Optional[str]]] = None,
    ) -> BatchResult:
        """Execute one batch of up to ``max_batch`` raw samples.

        Returns per-row outputs/quarantine flags; raises
        :class:`EngineFault` only when every retry failed (the caller
        must then answer each request with a coded error).
        """
        k = len(samples)
        if k == 0 or k > self.max_batch:
            raise ValueError(
                f"batch size {k} outside [1, {self.max_batch}]"
            )
        if request_ids is None:
            request_ids = [None] * k
        images = np.zeros((self.max_batch,) + self.sample_shape, dtype=DTYPE)
        quarantined_input: List[int] = []
        for i, sample in enumerate(samples):
            arr = np.asarray(sample, dtype=DTYPE)
            if arr.shape != self.sample_shape:
                raise ValueError(
                    f"sample {i} has shape {arr.shape}, expected "
                    f"{self.sample_shape}"
                )
            if np.all(np.isfinite(arr)):
                images[i] = arr
            else:
                quarantined_input.append(i)  # row stays zero: batch-safe
        with self._engine_lock:
            attempts = self._forward_with_recovery(images)
            batch_index = self.batches_executed
            self.batches_executed += 1
            completed_at = self.clock.now()
            out = self._output.data
            outputs: List[Optional[np.ndarray]] = []
            quarantined_output: List[int] = []
            for i in range(k):
                if i in quarantined_input:
                    outputs.append(None)
                    continue
                row = np.array(out[i], copy=True)
                if np.all(np.isfinite(row)):
                    outputs.append(row)
                else:
                    quarantined_output.append(i)
                    outputs.append(None)
            if self.record_batches:
                padded_ids = tuple(request_ids) + (None,) * (
                    self.max_batch - k
                )
                self.batch_log.append(BatchRecord(
                    batch_index=batch_index,
                    request_ids=padded_ids,
                    images=images.copy(),
                ))
        return BatchResult(
            batch_index=batch_index,
            outputs=outputs,
            quarantined_input=quarantined_input,
            quarantined_output=quarantined_output,
            attempts=attempts,
            restarts=self.restarts,
            completed_at=completed_at,
        )

    def _forward_with_recovery(self, images: np.ndarray) -> int:
        """Stage + forward, restarting the team on transient faults."""
        attempts = 0
        while True:
            attempts += 1
            for source in self._staged:
                source.stage(images)
            try:
                self.executor.forward(self.net)
                return attempts
            except (WorkerError, InjectedFault) as exc:
                if attempts > self.max_retries:
                    raise EngineFault(
                        f"forward pass failed {attempts} time(s), "
                        f"retries exhausted: {exc}",
                        attempts=attempts,
                    ) from exc
                # A crashed worker team cannot be reused: respawn it,
                # back off (virtual or real seconds), replay the batch.
                self.restarts += 1
                self.executor.team.restart()
                self.clock.sleep(self.backoff_s * (2 ** (attempts - 1)))

    # -- hot reload ----------------------------------------------------
    def reload(self, path: str) -> int:
        """Atomically swap in parameters from ``path``.

        Accepts either a full RCKP checkpoint container (the ``param::``
        entries are extracted) or a weights-only digest-verified
        ``.npz`` (``Net.save``).  Parsing and validation happen before
        the engine lock is taken; the swap itself waits for the
        in-flight batch to drain.  Returns the reload generation.
        """
        state = self._load_params(path)
        with self._engine_lock:
            self.net.load_state_dict(state)
            self.reloads += 1
            return self.reloads

    def _load_params(self, path: str) -> Dict[str, List[np.ndarray]]:
        with open(path, "rb") as handle:
            head = handle.read(len(MAGIC))
        grouped: Dict[str, List[Tuple[int, np.ndarray]]] = {}
        if head == MAGIC:
            for key, arr in checked_load(path).items():
                if key.startswith("param::"):
                    _, layer_name, index = key.split("::")
                    grouped.setdefault(layer_name, []).append(
                        (int(index), arr)
                    )
        else:
            for key, arr in load_npz_verified(path).items():
                layer_name, index = key.rsplit("::", 1)
                grouped.setdefault(layer_name, []).append((int(index), arr))
        state = {
            name: [arr for _, arr in sorted(pairs)]
            for name, pairs in grouped.items()
        }
        for layer in self.net.layers:
            if not layer.blobs:
                continue
            arrays = state.get(layer.name)
            if arrays is None:
                raise CheckpointMismatch(
                    f"{path!r} carries no parameters for layer "
                    f"{layer.name!r}; refusing a partial hot reload"
                )
            if len(arrays) != len(layer.blobs):
                raise CheckpointMismatch(
                    f"{path!r} has {len(arrays)} parameter blobs for "
                    f"layer {layer.name!r}, the live net has "
                    f"{len(layer.blobs)}"
                )
        return state

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        self.executor.team.shutdown()

    def __enter__(self) -> "InferenceEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
