"""Admission control: bounded queueing, backpressure, coded shedding.

Overload policy in one sentence: a request is either queued within the
declared capacity or *immediately* answered with a coded ``shed``
response — the queue can never grow without bound and no request ever
vanishes.  :class:`BoundedDeque` is the only queue type the serve path
may use (servecheck SV001 flags any other queue construction in
:mod:`repro.serve`): unlike ``queue.Queue()`` it cannot be built
unbounded, and unlike ``collections.deque(maxlen=...)`` it *rejects* at
capacity instead of silently discarding from the far end.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Generic, List, Optional, TypeVar

from repro.serve.pit import _Entry

T = TypeVar("T")


class QueueFull(Exception):
    """Raised by :meth:`BoundedDeque.push` at capacity (the caller turns
    this into a coded shed response; it is never user-facing)."""


class BoundedDeque(Generic[T]):
    """A FIFO with a mandatory capacity and loud rejection.

    The serve path's one sanctioned queue: ``push`` raises
    :class:`QueueFull` at capacity rather than blocking (no unbounded
    waits, SV002) or dropping (no silent losses, SV101).
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._items: Deque[T] = deque()
        self.high_water = 0

    def push(self, item: T) -> None:
        with self._lock:
            if len(self._items) >= self.capacity:
                raise QueueFull()
            self._items.append(item)
            if len(self._items) > self.high_water:
                self.high_water = len(self._items)

    def pop_upto(self, n: int) -> List[T]:
        """Dequeue at most ``n`` items, FIFO order."""
        with self._lock:
            count = min(n, len(self._items))
            return [self._items.popleft() for _ in range(count)]

    def prune(self, keep) -> int:
        """Drop queued items failing ``keep(item)``; returns the count
        removed (used to purge entries the PIT already answered, e.g.
        evicted-at-deadline requests still waiting for a batch slot)."""
        with self._lock:
            kept = deque(item for item in self._items if keep(item))
            removed = len(self._items) - len(kept)
            self._items = kept
            return removed

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def peek_oldest(self) -> Optional[T]:
        with self._lock:
            return self._items[0] if self._items else None


class AdmissionController:
    """Front door: admit into the bounded queue or shed with a code.

    ``try_admit`` never blocks and never drops silently: the outcome is
    either "queued" (entry parked for the batcher) or a reason string
    the server turns into a coded shed response.  Backpressure is the
    queue depth itself — clients can poll :meth:`depth` /
    :attr:`high_water` and slow down before shedding starts.
    """

    def __init__(self, capacity: int) -> None:
        self.queue: BoundedDeque[_Entry] = BoundedDeque(capacity)
        self.shed_count = 0
        self._lock = threading.Lock()

    def try_admit(self, entry: _Entry, now: float) -> Optional[str]:
        """Queue ``entry`` or return the shed reason (None = admitted)."""
        if entry.request.deadline < now:
            reason = (
                f"dead on arrival: deadline {entry.request.deadline:.6f} "
                f"already passed at admission time {now:.6f}"
            )
        else:
            try:
                self.queue.push(entry)
                return None
            except QueueFull:
                reason = (
                    f"queue full: {self.queue.capacity} requests already "
                    "waiting (backpressure — retry after a flush)"
                )
        with self._lock:
            self.shed_count += 1
        return reason

    def depth(self) -> int:
        return len(self.queue)

    @property
    def high_water(self) -> int:
        return self.queue.high_water
