"""Chaos harness: FaultPlan descriptors applied to a live server.

The serve-side counterpart of :func:`repro.resilience.faults.inject`.
It interprets, deterministically, the descriptors a training-side
injector ignores:

* :class:`~repro.resilience.faults.ChunkAbort` — ``iteration`` is read
  as the *served batch index*: the first chunk of the named layer in
  that batch raises :class:`InjectedFault` once, killing the worker
  team mid-batch (the engine must restart the team and replay the
  batch exactly once).
* :class:`~repro.resilience.faults.SlowChunk` — the named layer's first
  chunk of the given batch stalls ``delay_s`` seconds *through the
  engine's injected clock*, so a straggler replays identically in
  virtual time.
* :class:`~repro.resilience.faults.PoisonSample` — the given trace
  request's sample is overwritten with NaNs before submission.
* :class:`~repro.resilience.faults.RequestStorm` — when the trace
  reaches ``at_request``, ``count`` extra back-to-back requests are
  submitted (overload burst; admission must shed with codes).

Patches live in layer instance dicts (shadowing the class methods) and
are removed on exit, exactly like the training injector.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Dict, Iterator, List, Set, Tuple

import numpy as np

from repro.resilience.faults import (
    ChunkAbort,
    FaultPlan,
    InjectedFault,
    PoisonSample,
    RequestStorm,
    SlowChunk,
)
from repro.serve.engine import InferenceEngine


class ChaosHarness:
    """Arms serve-level FaultPlan descriptors on one engine."""

    def __init__(self, engine: InferenceEngine, plan: FaultPlan) -> None:
        self.engine = engine
        self.plan = plan
        self.storms: Dict[int, int] = {}
        self.poisoned: Set[int] = set()
        self._patched: List[Tuple[object, str]] = []
        self._fired: Set[object] = set()
        self._fire_lock = threading.Lock()
        for fault in plan:
            if isinstance(fault, RequestStorm):
                self.storms[fault.at_request] = (
                    self.storms.get(fault.at_request, 0) + fault.count
                )
            elif isinstance(fault, PoisonSample):
                self.poisoned.add(fault.request)

    # -- trace-side hooks ---------------------------------------------
    def poison_sample(self, index: int, sample: np.ndarray) -> np.ndarray:
        if index in self.poisoned:
            return np.full_like(sample, np.nan)
        return sample

    def storm_count(self, index: int) -> int:
        return self.storms.get(index, 0)

    # -- engine-side patches ------------------------------------------
    def _fires_now(self, fault, batch: int) -> bool:
        """True exactly once, on the first chunk of the target batch."""
        if self.engine.batches_executed != batch:
            return False
        with self._fire_lock:
            if fault in self._fired:
                return False
            self._fired.add(fault)
            return True

    def _patch_abort(self, fault: ChunkAbort) -> None:
        layer = self.engine.net.layer(fault.layer)
        original = layer.forward_chunk
        harness = self

        def patched(bottom, top, lo, hi):
            if harness._fires_now(fault, fault.iteration):
                raise InjectedFault(
                    f"chaos: worker crash in layer {fault.layer!r} "
                    f"[{lo}:{hi}] during served batch {fault.iteration}"
                )
            return original(bottom, top, lo, hi)

        layer.forward_chunk = patched
        self._patched.append((layer, "forward_chunk"))

    def _patch_slow(self, fault: SlowChunk) -> None:
        layer = self.engine.net.layer(fault.layer)
        original = layer.forward_chunk
        harness = self

        def patched(bottom, top, lo, hi):
            if harness._fires_now(fault, fault.batch):
                harness.engine.clock.sleep(fault.delay_s)
            return original(bottom, top, lo, hi)

        layer.forward_chunk = patched
        self._patched.append((layer, "forward_chunk"))

    def install(self) -> None:
        for fault in self.plan:
            if isinstance(fault, ChunkAbort):
                self._patch_abort(fault)
            elif isinstance(fault, SlowChunk):
                self._patch_slow(fault)

    def uninstall(self) -> None:
        for layer, method in self._patched:
            layer.__dict__.pop(method, None)
        self._patched.clear()


@contextlib.contextmanager
def chaos(engine: InferenceEngine, plan: FaultPlan) -> Iterator[ChaosHarness]:
    """Context manager: arm the serve-level faults, disarm on exit."""
    harness = ChaosHarness(engine, plan)
    harness.install()
    try:
        yield harness
    finally:
        harness.uninstall()
