"""Request/response records for the serve runtime.

The response vocabulary is the degradation ladder made explicit: every
request admitted *or rejected* terminates in exactly one coded
:class:`InferenceResponse` — there is no silent-drop path.  The
servecheck certifier (SV101/SV102) audits that invariant by counting
deliveries per request id over a whole chaos trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

#: Response status codes (the only legal values of
#: :attr:`InferenceResponse.status`).  Ordered by the degradation
#: ladder: serve > shed > timeout > quarantine > error.
STATUS_OK = "ok"
STATUS_SHED = "shed"                        # admission rejected (overload)
STATUS_TIMEOUT = "timeout"                  # deadline passed before delivery
STATUS_QUARANTINED_INPUT = "quarantined-input"    # NaN/Inf in the sample
STATUS_QUARANTINED_OUTPUT = "quarantined-output"  # NaN/Inf in the logits
STATUS_ERROR = "error"                      # executor fault, retries exhausted

ALL_STATUSES = (
    STATUS_OK,
    STATUS_SHED,
    STATUS_TIMEOUT,
    STATUS_QUARANTINED_INPUT,
    STATUS_QUARANTINED_OUTPUT,
    STATUS_ERROR,
)


@dataclass(frozen=True)
class InferenceRequest:
    """One single-sample inference request.

    ``deadline`` is an absolute instant on the serve clock's axis; the
    runtime never reads wall-clock to interpret it (SV004).  ``sample``
    is a ``(C, H, W)`` array matching the model's data-layer shape.
    """

    request_id: str
    sample: np.ndarray
    deadline: float
    submitted_at: float

    def __post_init__(self) -> None:
        if self.deadline < self.submitted_at:
            raise ValueError(
                f"request {self.request_id!r}: deadline {self.deadline} "
                f"precedes submission time {self.submitted_at}"
            )


@dataclass(frozen=True)
class InferenceResponse:
    """The single, final answer for one request id."""

    request_id: str
    status: str
    output: Optional[np.ndarray] = None   # logits row; None unless "ok"
    detail: str = ""
    completed_at: float = 0.0
    batch_index: Optional[int] = None     # which served batch computed it
    latency: float = field(default=0.0)   # completed_at - submitted_at

    def __post_init__(self) -> None:
        if self.status not in ALL_STATUSES:
            raise ValueError(
                f"unknown response status {self.status!r}; "
                f"expected one of {ALL_STATUSES}"
            )
        if self.status == STATUS_OK and self.output is None:
            raise ValueError(
                f"request {self.request_id!r}: an 'ok' response must "
                "carry an output row"
            )

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK
