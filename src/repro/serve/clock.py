"""Injected monotonic clocks for the serve runtime.

Every deadline decision in :mod:`repro.serve` — admission, flush
triggers, pending-table eviction, retry backoff — reads time through a
:class:`Clock` instance handed in at construction.  No other serve
module may import :mod:`time`; the servecheck static lint (SV004)
enforces this, the same way detcheck's DC lint bans wall-clock reads
from deterministic paths.  The payoff is the dynamic half of servecheck:
a whole 1k-request trace, including straggler stalls and retry backoff,
replays in *virtual* time under :class:`ManualClock`, deterministically
and in milliseconds of real wall-clock.

:class:`MonotonicClock` is the production backend (``time.monotonic``;
never wall-clock ``time.time``, which jumps under NTP).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List


class Clock:
    """The serve runtime's time source: ``now()`` and ``sleep()``."""

    def now(self) -> float:
        """Seconds on a monotonic axis (origin is arbitrary)."""
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        """Block the calling thread for ``seconds`` (virtual or real)."""
        raise NotImplementedError


class MonotonicClock(Clock):
    """Production clock: ``time.monotonic`` / ``time.sleep``."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class ManualClock(Clock):
    """Deterministic test/certification clock driven by ``advance()``.

    ``sleep()`` does not block: it advances virtual time by the
    requested amount (single-driver replay semantics — the certifier
    pumps the server from one thread, so a sleeping component *is* the
    driver and blocking it would deadlock the replay).  ``on_advance``
    callbacks let a harness observe every time step.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._lock = threading.Lock()
        self.on_advance: List[Callable[[float], None]] = []

    def now(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> float:
        """Move virtual time forward by ``seconds``; returns the new now."""
        if seconds < 0:
            raise ValueError(f"cannot advance time backwards ({seconds})")
        with self._lock:
            self._now += seconds
            now = self._now
        for callback in self.on_advance:
            callback(now)
        return now

    def advance_to(self, instant: float) -> float:
        """Move virtual time forward to ``instant`` (no-op if passed)."""
        with self._lock:
            delta = instant - self._now
        return self.advance(delta) if delta > 0 else self.now()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            self.advance(seconds)
