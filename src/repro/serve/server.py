"""The request front-end: submit → admit → batch → execute → deliver.

Two driving modes share one dispatch cycle (:meth:`InferenceServer.pump`):

* **pumped** — the caller (a test, the servecheck certifier) advances an
  injected :class:`~repro.serve.clock.ManualClock` and calls ``pump()``
  at chosen instants; the whole serving pipeline, deadlines included,
  replays deterministically in virtual time.
* **background** — :meth:`start` runs a dispatcher thread that pumps on
  submissions and flush-deadline hints (the bench_serve load generator
  uses this with the real monotonic clock).

The dispatcher is supervised: a pump that raises is counted, the batch
it was executing is answered with coded errors (inside
``_execute_batch``), and the loop continues — a serving process
degrades loudly, it does not die silently.  Every request submitted
terminates in exactly one coded response via the pending-request
table's idempotent delivery.
"""

from __future__ import annotations

import itertools
import threading
from typing import Dict, List, Optional

import numpy as np

from repro.serve.admission import AdmissionController
from repro.serve.batcher import DynamicBatcher
from repro.serve.clock import ManualClock
from repro.serve.engine import EngineFault, InferenceEngine
from repro.serve.pit import Handle, PendingRequestTable, _Entry
from repro.serve.request import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_QUARANTINED_INPUT,
    STATUS_QUARANTINED_OUTPUT,
    STATUS_SHED,
    STATUS_TIMEOUT,
    InferenceRequest,
    InferenceResponse,
)

#: Dispatcher idle poll (real seconds) when no flush hint is pending.
_IDLE_POLL_S = 0.002
#: Longest the dispatcher sleeps even with a distant flush hint.
_MAX_POLL_S = 0.05
#: Backoff after a supervised pump failure (through the clock).
_FAILURE_BACKOFF_S = 0.01


class InferenceServer:
    """Multi-tenant single-model request runtime over one engine."""

    def __init__(
        self,
        engine: InferenceEngine,
        capacity: int = 64,
        max_delay: float = 0.005,
        margin: float = 0.0,
        default_budget: float = 1.0,
        on_deliver=None,
    ) -> None:
        self.engine = engine
        self.clock = engine.clock
        self.pit = PendingRequestTable(on_deliver=on_deliver)
        self.admission = AdmissionController(capacity)
        self.batcher = DynamicBatcher(engine.max_batch, max_delay, margin)
        self.default_budget = default_budget
        self._pump_lock = threading.Lock()
        self._auto_ids = itertools.count()
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.pump_failures = 0
        self.batches_served = 0

    # -- ingress -------------------------------------------------------
    def submit(
        self,
        sample: np.ndarray,
        budget: Optional[float] = None,
        deadline: Optional[float] = None,
        request_id: Optional[str] = None,
    ) -> Handle:
        """Register one request; returns its :class:`Handle`.

        ``budget`` is a relative latency budget in clock seconds
        (default :attr:`default_budget`); ``deadline`` overrides it with
        an absolute instant on the serve clock's axis.  Overload never
        blocks the caller: at capacity the request is *answered*
        immediately with a coded shed response through its handle.
        """
        now = self.clock.now()
        if deadline is None:
            deadline = now + (budget if budget is not None
                              else self.default_budget)
        rid = (request_id if request_id is not None
               else f"auto-{next(self._auto_ids)}")
        request = InferenceRequest(
            request_id=rid,
            sample=np.asarray(sample),
            deadline=deadline,
            submitted_at=now,
        )
        handle = self.pit.add(request)
        reason = self.admission.try_admit(handle._entry, now)
        if reason is not None:
            self.pit.deliver(InferenceResponse(
                request_id=rid,
                status=STATUS_SHED,
                detail=reason,
                completed_at=now,
                latency=0.0,
            ))
        self._wake.set()
        return handle

    # -- the dispatch cycle --------------------------------------------
    def pump(self) -> int:
        """One dispatch cycle: evict expired, flush every due batch.

        Serialized with concurrent pumps/reloads; returns the number of
        responses delivered during this cycle.
        """
        delivered = 0
        with self._pump_lock:
            now = self.clock.now()
            delivered += len(self.pit.evict_expired(now))
            while True:
                batch = self.batcher.take_batch(self.admission, now)
                if not batch:
                    break
                delivered += self._execute_batch(batch)
                # SlowChunk/backoff may have advanced virtual time:
                # re-read before deciding whether another flush is due.
                now = self.clock.now()
                delivered += len(self.pit.evict_expired(now))
        return delivered

    def _execute_batch(self, entries: List[_Entry]) -> int:
        """Run one batch and answer every entry with a coded response.

        Any executor failure — retries exhausted, even an unexpected
        bug — is converted to per-request ``error`` responses here, so
        entries popped from the queue can never be lost.
        """
        ids = [entry.request.request_id for entry in entries]
        samples = [entry.request.sample for entry in entries]
        try:
            result = self.engine.run_batch(samples, ids)
        except Exception as exc:  # EngineFault or an unexpected defect
            kind = ("retries exhausted"
                    if isinstance(exc, EngineFault) else "executor defect")
            now = self.clock.now()
            delivered = 0
            for entry in entries:
                delivered += self.pit.deliver(InferenceResponse(
                    request_id=entry.request.request_id,
                    status=STATUS_ERROR,
                    detail=f"{kind}: {exc}",
                    completed_at=now,
                    latency=now - entry.request.submitted_at,
                ))
            return delivered
        self.batches_served += 1
        completed = result.completed_at
        delivered = 0
        for i, entry in enumerate(entries):
            rid = entry.request.request_id
            latency = completed - entry.request.submitted_at
            if i in result.quarantined_input:
                response = InferenceResponse(
                    request_id=rid,
                    status=STATUS_QUARANTINED_INPUT,
                    detail="sample carries NaN/Inf; row zeroed and "
                           "quarantined (batch-mates unaffected)",
                    completed_at=completed,
                    batch_index=result.batch_index,
                    latency=latency,
                )
            elif i in result.quarantined_output:
                response = InferenceResponse(
                    request_id=rid,
                    status=STATUS_QUARANTINED_OUTPUT,
                    detail="forward pass produced non-finite logits "
                           "for this row",
                    completed_at=completed,
                    batch_index=result.batch_index,
                    latency=latency,
                )
            elif completed > entry.request.deadline:
                # Served too late (straggler / retry backoff): honest
                # timeout, not a stale "ok".
                response = InferenceResponse(
                    request_id=rid,
                    status=STATUS_TIMEOUT,
                    detail=(
                        f"batch completed at {completed:.6f}, after the "
                        f"deadline {entry.request.deadline:.6f}"
                    ),
                    completed_at=completed,
                    batch_index=result.batch_index,
                    latency=latency,
                )
            else:
                response = InferenceResponse(
                    request_id=rid,
                    status=STATUS_OK,
                    output=result.outputs[i],
                    completed_at=completed,
                    batch_index=result.batch_index,
                    latency=latency,
                )
            delivered += self.pit.deliver(response)
        return delivered

    # -- background dispatcher -----------------------------------------
    def start(self) -> None:
        """Run the dispatcher on a supervised background thread."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="serve-dispatcher", daemon=True,
        )
        self._thread.start()

    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            self._wake.clear()
            try:
                self.pump()
            except Exception:
                # Supervisor: the dispatcher must outlive any pump
                # defect.  Batch entries were already answered inside
                # _execute_batch; count the failure, back off, go on.
                self.pump_failures += 1
                self.clock.sleep(_FAILURE_BACKOFF_S)
            now = self.clock.now()
            hint = self.batcher.next_flush_at(self.admission, now)
            if hint is None:
                poll = _IDLE_POLL_S
            else:
                poll = min(max(hint - now, 1e-4), _MAX_POLL_S)
            self._wake.wait(timeout=poll)

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the dispatcher thread (requests still queued stay
        pending until a later pump/evict; call :meth:`drain` first for
        a clean shutdown)."""
        self._stop.set()
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    def drain(self, timeout: float = 10.0, poll: float = 0.001) -> bool:
        """Pump until no request is pending (bounded by real/virtual
        ``timeout`` seconds of clock time); True when fully drained."""
        start = self.clock.now()
        while self.pit.pending_count() > 0:
            if self.clock.now() - start > timeout:
                return False
            self.pump()
            if self.pit.pending_count() == 0:
                break
            if isinstance(self.clock, ManualClock):
                self.clock.advance(poll)
            else:
                self.clock.sleep(poll)
        return True

    # -- management ----------------------------------------------------
    def reload(self, path: str) -> int:
        """Hot-swap model parameters (drains the in-flight batch)."""
        return self.engine.reload(path)

    def stats(self) -> Dict[str, object]:
        table = self.pit.stats()
        return {
            "pending": table["pending"],
            "delivered": table["delivered"],
            "duplicates_suppressed": table["duplicates_suppressed"],
            "queue_depth": self.admission.depth(),
            "queue_high_water": self.admission.high_water,
            "shed": self.admission.shed_count,
            "batches_served": self.batches_served,
            "engine_restarts": self.engine.restarts,
            "engine_reloads": self.engine.reloads,
            "pump_failures": self.pump_failures,
        }
