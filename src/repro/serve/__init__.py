"""repro.serve — fault-tolerant batched inference serving (PR 10).

The ROADMAP's "millions of users" axis made concrete: concurrent
single-sample requests are admitted through a bounded queue, coalesced
into dynamically sized batches (size- and deadline-triggered), executed
on the TEST-phase net by the existing ThreadTeam/ParallelExecutor, and
demultiplexed back through a pending-request table with per-request
deadlines and idempotent delivery.

Degradation ladder (every rung a coded response, never silence):

    shed  →  partial-batch  →  quarantine  →  restart/replay

Certified by the ``servecheck`` analyzer family (SV codes): a static
lint of this package (bounded queues only, no wall-clock reads, no
unbounded waits, synccheck's lock discipline) plus a dynamic chaos
certification that replays a recorded trace under injected worker
crashes, straggler chunks, poisoned samples and request storms, gating
on zero lost/duplicated responses and bitwise parity of every served
output against direct sequential ``Net.forward``.
"""

from repro.serve.admission import AdmissionController, BoundedDeque, QueueFull
from repro.serve.batcher import DynamicBatcher
from repro.serve.chaos import ChaosHarness, chaos
from repro.serve.clock import Clock, ManualClock, MonotonicClock
from repro.serve.engine import (
    BatchRecord,
    BatchResult,
    EngineFault,
    InferenceEngine,
    StagedSource,
)
from repro.serve.pit import Handle, PendingRequestTable
from repro.serve.request import (
    ALL_STATUSES,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_QUARANTINED_INPUT,
    STATUS_QUARANTINED_OUTPUT,
    STATUS_SHED,
    STATUS_TIMEOUT,
    InferenceRequest,
    InferenceResponse,
)
from repro.serve.server import InferenceServer
from repro.serve.trace import RequestTrace, TraceEvent, replay_trace

__all__ = [
    "ALL_STATUSES",
    "AdmissionController",
    "BatchRecord",
    "BatchResult",
    "BoundedDeque",
    "ChaosHarness",
    "Clock",
    "DynamicBatcher",
    "EngineFault",
    "Handle",
    "InferenceEngine",
    "InferenceRequest",
    "InferenceResponse",
    "InferenceServer",
    "ManualClock",
    "MonotonicClock",
    "PendingRequestTable",
    "QueueFull",
    "RequestTrace",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_QUARANTINED_INPUT",
    "STATUS_QUARANTINED_OUTPUT",
    "STATUS_SHED",
    "STATUS_TIMEOUT",
    "StagedSource",
    "TraceEvent",
    "chaos",
    "replay_trace",
]
