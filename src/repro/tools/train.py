"""Train a network from the command line.

Examples::

    python -m repro.tools.train --net lenet --iters 60 --threads 4
    python -m repro.tools.train --net cifar10 --reduction ordered \\
        --schedule static,2 --snapshot weights.npz
    python -m repro.tools.train --prototxt my_net.prototxt --iters 20

Per-layer execution plans (from ``repro.analysis plancheck``)::

    python -m repro.analysis plancheck --net lenet --threads 8 \\
        --emit-plan lenet.plan.json
    python -m repro.tools.train --net lenet --threads 8 \\
        --reduction blockwise --plan lenet.plan.json

A plan overrides the executor-wide thread/schedule/reduction choice per
layer; it is validated against the live net before training (PL101+
drift findings abort on error).

Fault tolerance::

    python -m repro.tools.train --net lenet --iters 100 \\
        --checkpoint ck.rckp --checkpoint-every 20
    python -m repro.tools.train --net lenet --iters 100 \\
        --checkpoint ck.rckp --checkpoint-every 20 --resume ck.rckp
    python -m repro.tools.train --net cifar10 --guard rollback

Checkpoints are crash-consistent (atomic write, CRC-32 verified) and
capture the complete trajectory state, so a resumed run is bitwise
identical to the uninterrupted one; ``--guard`` arms the per-iteration
NaN/Inf sentinels.
"""

from __future__ import annotations

import argparse
import sys

from repro.core import ParallelExecutor
from repro.core.reduction import REDUCTION_MODES
from repro.core.scheduling import make_schedule
from repro.data import register_default_sources
from repro.framework.net import Net
from repro.framework.prototxt import parse_prototxt
from repro.framework.solvers import SolverParams, create_solver
from repro.resilience import (
    GUARD_POLICIES,
    CheckpointError,
    HealthGuard,
    NumericFault,
)
from repro.zoo import build_solver


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.train",
        description="Coarse-grain parallel DNN training (PPoPP'16 repro)",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--net", choices=("lenet", "cifar10"),
                        help="zoo network")
    source.add_argument("--prototxt", help="path to a network prototxt")
    parser.add_argument("--iters", type=int, default=50,
                        help="training iterations (default 50)")
    parser.add_argument("--threads", type=int, default=1,
                        help="coarse-grain thread count (default 1)")
    parser.add_argument("--reduction", choices=REDUCTION_MODES,
                        default="ordered",
                        help="gradient merge mode (default ordered)")
    parser.add_argument("--schedule", default="static",
                        help="loop schedule, e.g. static, static,4, "
                             "dynamic,2 (default static)")
    parser.add_argument("--plan", default=None, metavar="PATH",
                        help="per-layer ExecutionPlan JSON (from "
                             "'repro.analysis plancheck --emit-plan'); "
                             "overrides threads/schedule/reduction per "
                             "layer, validated against the net before "
                             "training")
    parser.add_argument("--solver", default="SGD",
                        choices=("SGD", "AdaGrad", "Nesterov"))
    parser.add_argument("--lr", type=float, default=None,
                        help="override base learning rate")
    parser.add_argument("--display", type=int, default=10,
                        help="print loss every N iterations")
    parser.add_argument("--snapshot", default=None,
                        help="save trained weights to this .npz path")
    parser.add_argument("--test", action="store_true",
                        help="evaluate test accuracy after training "
                             "(zoo nets only)")
    parser.add_argument("--checkpoint", default=None, metavar="PATH",
                        help="full-state checkpoint file (atomic, "
                             "CRC-32-checksummed; also written on a "
                             "numeric-guard halt)")
    parser.add_argument("--checkpoint-every", type=int, default=0,
                        metavar="N",
                        help="write --checkpoint every N iterations "
                             "(requires --checkpoint)")
    parser.add_argument("--resume", default=None, metavar="PATH",
                        help="restore a --checkpoint file before training; "
                             "the resumed trajectory bitwise-matches the "
                             "uninterrupted run")
    parser.add_argument("--guard", choices=GUARD_POLICIES, default=None,
                        help="arm the per-iteration NaN/Inf health guard "
                             "with this recovery policy")
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.checkpoint_every < 0:
        parser.error(f"--checkpoint-every must be >= 0, "
                     f"got {args.checkpoint_every}")
    if args.checkpoint_every and not args.checkpoint:
        parser.error("--checkpoint-every requires --checkpoint PATH")

    plan = None
    if args.plan:
        from repro.core import ExecutionPlan

        try:
            plan = ExecutionPlan.load(args.plan)
        except (OSError, ValueError, KeyError) as exc:
            raise SystemExit(f"cannot load plan {args.plan!r}: {exc}")

    executor = None
    if args.threads > 1 or plan is not None:
        executor = ParallelExecutor(
            num_threads=args.threads,
            reduction=args.reduction,
            schedule=make_schedule(args.schedule),
            plan=plan,
        )

    if args.net:
        solver = build_solver(args.net, max_iter=args.iters,
                              with_test_net=args.test, executor=executor)
        if args.lr is not None:
            solver.params.base_lr = args.lr
        if args.solver != "SGD":
            params = solver.params
            params.type = args.solver
            if args.solver == "AdaGrad":
                params.momentum = 0.0
            solver = create_solver(params, solver.net,
                                   test_net=solver.test_net)
            if executor is not None:
                solver.executor = executor
            if solver.test_net is not None:
                solver.share_test_net_params()
    else:
        register_default_sources()
        with open(args.prototxt) as handle:
            spec = parse_prototxt(handle.read())
        net = Net(spec, phase="TRAIN")
        params = SolverParams(type=args.solver,
                              base_lr=args.lr or 0.01,
                              momentum=0.0 if args.solver == "AdaGrad"
                              else 0.9,
                              max_iter=args.iters)
        solver = create_solver(params, net)
        if executor is not None:
            solver.executor = executor

    if plan is not None:
        from repro.core import plan_drift

        drift = plan_drift(plan, solver.net, args.threads)
        for code, layer, message in drift:
            stream = sys.stdout if code == "PL104" else sys.stderr
            print(f"plan drift {code} [{layer}]: {message}", file=stream)
        errors = [d for d in drift if d[0] != "PL104"]
        if errors:
            raise SystemExit(
                f"plan {args.plan!r} does not match the live net "
                f"({len(errors)} error(s)); re-emit it with "
                f"'python -m repro.analysis plancheck --emit-plan'"
            )

    solver.params.display = args.display
    solver.set_display(print)
    if args.guard:
        solver.guard = HealthGuard(policy=args.guard)
    if args.resume:
        try:
            solver.load_state(args.resume)
        except CheckpointError as exc:
            raise SystemExit(f"cannot resume: {exc}")
        print(f"resumed from {args.resume} at iteration {solver.iteration}")

    print(f"training {args.net or args.prototxt}: {args.iters} iterations, "
          f"{args.threads} thread(s), {args.reduction} reduction, "
          f"{args.schedule} schedule, {args.solver}"
          + (f", plan {args.plan}" if args.plan else ""))
    final_loss = solver.loss_history[-1] if solver.loss_history else 0.0
    try:
        while solver.iteration < args.iters:
            if args.checkpoint_every:
                span = args.checkpoint_every - (
                    solver.iteration % args.checkpoint_every
                )
                span = min(span, args.iters - solver.iteration)
            else:
                span = args.iters - solver.iteration
            final_loss = solver.step(span)
            if args.checkpoint_every:
                solver.save_state(args.checkpoint)
                print(f"checkpoint written to {args.checkpoint} at "
                      f"iteration {solver.iteration}")
    except NumericFault as exc:
        # The guard restored the last healthy state before raising, so
        # the checkpoint written here is clean and resumable.
        print(f"training halted: {exc.event}")
        if args.checkpoint:
            solver.save_state(args.checkpoint)
            print(f"healthy state checkpointed to {args.checkpoint} at "
                  f"iteration {solver.iteration}")
        if executor is not None:
            executor.close()
        return 2
    print(f"final loss: {final_loss:.6f}")

    if args.test and solver.test_net is not None:
        print(f"test accuracy: {solver.test():.3f}")
    if args.snapshot:
        solver.net.save(args.snapshot)
        print(f"weights saved to {args.snapshot}")
    if executor is not None:
        executor.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
