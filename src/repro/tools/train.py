"""Train a network from the command line.

Examples::

    python -m repro.tools.train --net lenet --iters 60 --threads 4
    python -m repro.tools.train --net cifar10 --reduction ordered \\
        --schedule static,2 --snapshot weights.npz
    python -m repro.tools.train --prototxt my_net.prototxt --iters 20
"""

from __future__ import annotations

import argparse
import sys

from repro.core import ParallelExecutor
from repro.core.reduction import REDUCTION_MODES
from repro.core.scheduling import make_schedule
from repro.data import register_default_sources
from repro.framework.net import Net
from repro.framework.prototxt import parse_prototxt
from repro.framework.solvers import SolverParams, create_solver
from repro.zoo import build_solver


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.train",
        description="Coarse-grain parallel DNN training (PPoPP'16 repro)",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--net", choices=("lenet", "cifar10"),
                        help="zoo network")
    source.add_argument("--prototxt", help="path to a network prototxt")
    parser.add_argument("--iters", type=int, default=50,
                        help="training iterations (default 50)")
    parser.add_argument("--threads", type=int, default=1,
                        help="coarse-grain thread count (default 1)")
    parser.add_argument("--reduction", choices=REDUCTION_MODES,
                        default="ordered",
                        help="gradient merge mode (default ordered)")
    parser.add_argument("--schedule", default="static",
                        help="loop schedule, e.g. static, static,4, "
                             "dynamic,2 (default static)")
    parser.add_argument("--solver", default="SGD",
                        choices=("SGD", "AdaGrad", "Nesterov"))
    parser.add_argument("--lr", type=float, default=None,
                        help="override base learning rate")
    parser.add_argument("--display", type=int, default=10,
                        help="print loss every N iterations")
    parser.add_argument("--snapshot", default=None,
                        help="save trained weights to this .npz path")
    parser.add_argument("--test", action="store_true",
                        help="evaluate test accuracy after training "
                             "(zoo nets only)")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)

    executor = None
    if args.threads > 1:
        executor = ParallelExecutor(
            num_threads=args.threads,
            reduction=args.reduction,
            schedule=make_schedule(args.schedule),
        )

    if args.net:
        solver = build_solver(args.net, max_iter=args.iters,
                              with_test_net=args.test, executor=executor)
        if args.lr is not None:
            solver.params.base_lr = args.lr
        if args.solver != "SGD":
            params = solver.params
            params.type = args.solver
            if args.solver == "AdaGrad":
                params.momentum = 0.0
            solver = create_solver(params, solver.net,
                                   test_net=solver.test_net)
            if executor is not None:
                solver.executor = executor
            if solver.test_net is not None:
                solver.share_test_net_params()
    else:
        register_default_sources()
        with open(args.prototxt) as handle:
            spec = parse_prototxt(handle.read())
        net = Net(spec, phase="TRAIN")
        params = SolverParams(type=args.solver,
                              base_lr=args.lr or 0.01,
                              momentum=0.0 if args.solver == "AdaGrad"
                              else 0.9,
                              max_iter=args.iters)
        solver = create_solver(params, net)
        if executor is not None:
            solver.executor = executor

    solver.params.display = args.display
    solver.set_display(print)
    print(f"training {args.net or args.prototxt}: {args.iters} iterations, "
          f"{args.threads} thread(s), {args.reduction} reduction, "
          f"{args.schedule} schedule, {args.solver}")
    final_loss = solver.step(args.iters)
    print(f"final loss: {final_loss:.6f}")

    if args.test and solver.test_net is not None:
        print(f"test accuracy: {solver.test():.3f}")
    if args.snapshot:
        solver.net.save(args.snapshot)
        print(f"weights saved to {args.snapshot}")
    if executor is not None:
        executor.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
