"""Per-layer profiling from the command line.

Runs a few real traced iterations of a zoo network (measured wall time,
Figure 4/7 style) and prints the simulated testbed scaling figures for
comparison.

Example::

    python -m repro.tools.profile --net lenet --threads 2 --iters 3

BLAS thread pools are pinned to 1 before numpy loads (see
:mod:`repro.bench.pinning`) so the measured breakdown reflects only the
coarse-grain thread team; export one of the ``*_NUM_THREADS`` variables
to override.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.pinning import pin_blas_threads

#: Must run before the numpy-importing repro imports below.
_BLAS_PIN = pin_blas_threads()

from repro.core import ParallelExecutor, TracingExecutor  # noqa: E402
from repro.framework.solvers.base import SequentialExecutor  # noqa: E402
from repro.simulator import CPUModel, net_costs  # noqa: E402
from repro.simulator.report import (  # noqa: E402
    format_table,
    layer_scalability_table,
)
from repro.zoo import build_net  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro.tools.profile")
    parser.add_argument("--net", choices=("lenet", "cifar10"),
                        default="lenet")
    parser.add_argument("--threads", type=int, default=1)
    parser.add_argument("--iters", type=int, default=3)
    args = parser.parse_args(argv)

    net = build_net(args.net)
    if args.threads > 1:
        inner = ParallelExecutor(num_threads=args.threads)
    else:
        inner = SequentialExecutor()
    tracer = TracingExecutor(inner)

    print(f"tracing {args.iters} real iterations of {args.net} "
          f"({args.threads} thread(s)) ...")
    for _ in range(args.iters):
        net.clear_param_diffs()
        tracer.forward(net)
        tracer.backward(net)
    if isinstance(inner, ParallelExecutor):
        inner.close()

    print("\nmeasured per-layer breakdown (this machine):")
    print(tracer.trace.table())

    print("\nmodelled per-layer scalability on the paper's 16-core Xeon:")
    costs = net_costs(net)
    keys, rows = layer_scalability_table(costs, CPUModel(), (2, 4, 8, 16))
    print(format_table(
        ["threads"] + keys,
        [[f"{t}T"] + row for t, row in zip((2, 4, 8, 16), rows)],
        width=11,
    ))
    return 0


if __name__ == "__main__":
    sys.exit(main())
