"""Command-line tools.

* ``python -m repro.tools.train`` — train a zoo network (or a prototxt
  file) with the coarse-grain parallel runtime.
* ``python -m repro.tools.profile`` — per-layer breakdown of a real
  traced run plus the simulated testbed scaling figures.
* ``python -m repro.tools.analyze`` — the analysis suite (parallel
  safety, netcheck, detcheck, rescheck); alias for
  ``python -m repro.analysis``.
"""
