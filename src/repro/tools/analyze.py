"""Front-end for the analysis suite (``python -m repro.tools.analyze``).

Thin alias for ``python -m repro.analysis`` so every operational
entry point lives under ``repro.tools``; the argument surface is
identical::

    python -m repro.tools.analyze --net lenet --gate          # FP/RT
    python -m repro.tools.analyze netcheck --net lenet --gate # NG
    python -m repro.tools.analyze detcheck --threads 1,2,8    # DC
    python -m repro.tools.analyze rescheck --gate             # RS
    python -m repro.tools.analyze plancheck --gate            # PL
    python -m repro.tools.analyze plancheck --net lenet \\
        --threads 8 --emit-plan lenet.plan.json               # PL
    python -m repro.tools.analyze fusecheck --gate            # FU
    python -m repro.tools.analyze synccheck --gate            # SY
    python -m repro.tools.analyze perfcheck --gate            # PE
    python -m repro.tools.analyze servecheck --gate           # SV
    python -m repro.tools.analyze --list-codes
    python -m repro.tools.analyze --check-codes

See :mod:`repro.analysis.__main__` for the full per-pass help.
"""

from __future__ import annotations

import sys

from repro.analysis.__main__ import main

if __name__ == "__main__":
    sys.exit(main())
