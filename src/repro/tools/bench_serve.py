"""Serving load generator (``BENCH_serve.json``).

Drives the :mod:`repro.serve` stack with an open-loop request stream on
the *real* monotonic clock — the background dispatcher, not the pumped
certification mode — and records latency percentiles and throughput
for two regimes per (net, team width):

* **healthy** — the plain trace;
* **chaos** — the same trace with an injected worker crash
  (:class:`~repro.resilience.faults.ChunkAbort`), a straggler chunk
  (:class:`~repro.resilience.faults.SlowChunk`), one poisoned NaN
  sample (:class:`~repro.resilience.faults.PoisonSample`) and a
  request storm past admission capacity
  (:class:`~repro.resilience.faults.RequestStorm`).

The robustness contract is enforced, not just measured: the run exits
nonzero if any request is lost (no response) or answered more than
once, in either regime.  ``--gate-latency`` additionally fails the run
when the healthy p99 exceeds the per-request deadline budget
(wall-clock gating flakes on loaded hosts, so it is opt-in, mirroring
perfcheck's ``--timing-warn-only`` stance).

Example::

    python -m repro.tools.bench_serve --requests 1000 \\
        --out BENCH_serve.json
    python -m repro.tools.bench_serve --nets mlp --threads 2 --json

The committed ``BENCH_serve.json`` at the repo root is the output of
the default invocation on the CI container, in the ``repro-bench/1``
envelope (see :mod:`repro.bench.schema`).  BLAS pools are pinned to 1
before numpy loads, like every other bench tool.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.bench.pinning import pin_blas_threads

#: Must run before the numpy-importing repro imports below, or the BLAS
#: pools have already sized themselves from the ambient environment.
_BLAS_PIN = pin_blas_threads()

import numpy as np  # noqa: E402

from repro.bench.schema import dump_bench, envelope  # noqa: E402
from repro.resilience.faults import (  # noqa: E402
    ChunkAbort,
    FaultPlan,
    PoisonSample,
    RequestStorm,
    SlowChunk,
)
from repro.serve import (  # noqa: E402
    InferenceEngine,
    InferenceServer,
    RequestTrace,
    chaos,
)
from repro.zoo import build_net  # noqa: E402

DEFAULT_NETS = ("mlp", "lenet")
DEFAULT_THREADS = (2,)
DEFAULT_REQUESTS = 1000
DEFAULT_BUDGET_S = 0.5
DEFAULT_MEAN_GAP_S = 0.002


def _percentile_ms(latencies, q):
    if not latencies:
        return None
    return round(float(np.percentile(np.asarray(latencies), q)) * 1e3, 3)


def _first_parallel_layer(net) -> str:
    for layer in net.layers:
        if layer.blobs:
            return layer.name
    return net.layer_names[-1]


def _run_regime(name, threads, trace, regime, max_batch, capacity,
                budget, seed, log):
    """One open-loop replay on the real clock; returns the regime record."""
    deliveries = {}

    def record(resp):
        deliveries.setdefault(resp.request_id, []).append(resp)

    engine = InferenceEngine(
        lambda: build_net(name, phase="TEST"),
        num_threads=threads, max_batch=max_batch,
        record_batches=False,   # 1k batches of images: skip the log
    )
    server = InferenceServer(engine, capacity=capacity, on_deliver=record)
    harness_ctx = None
    if regime == "chaos":
        target = _first_parallel_layer(engine.net)
        n = len(trace)
        plan = FaultPlan(
            ChunkAbort(layer=target, iteration=max(1, n // (4 * max_batch))),
            SlowChunk(layer=target, batch=max(2, n // (2 * max_batch)),
                      delay_s=min(0.05, budget / 4)),
            PoisonSample(request=n // 3),
            RequestStorm(at_request=(2 * n) // 3,
                         count=capacity + max_batch),
        )
        harness_ctx = chaos(engine, plan)
    submitted = []
    try:
        harness = harness_ctx.__enter__() if harness_ctx else None
        server.start()
        start = time.monotonic()
        for event in trace.events:
            lag = (start + event.offset) - time.monotonic()
            if lag > 0:
                time.sleep(lag)
            sample = trace.sample_for(event)
            if harness is not None:
                sample = harness.poison_sample(event.index, sample)
            server.submit(sample, budget=event.budget,
                          request_id=event.request_id)
            submitted.append(event.request_id)
            if harness is not None:
                for burst in range(harness.storm_count(event.index)):
                    storm_id = f"{event.request_id}::storm{burst}"
                    server.submit(trace.sample_for(event),
                                  budget=event.budget,
                                  request_id=storm_id)
                    submitted.append(storm_id)
        drained = server.drain(timeout=max(30.0, 4 * budget))
        elapsed = time.monotonic() - start
        server.stop()
    finally:
        if harness_ctx:
            harness_ctx.__exit__(None, None, None)
        engine.close()

    lost = [rid for rid in submitted if rid not in deliveries]
    duplicated = {rid: len(rs) for rid, rs in deliveries.items()
                  if len(rs) > 1}
    statuses = {}
    ok_latencies = []
    for responses in deliveries.values():
        resp = responses[0]
        statuses[resp.status] = statuses.get(resp.status, 0) + 1
        if resp.status == "ok":
            ok_latencies.append(resp.latency)
    stats = server.stats()
    record_out = {
        "requests": len(submitted),
        "lost": len(lost),
        "duplicated": len(duplicated),
        "drained": drained,
        "statuses": dict(sorted(statuses.items())),
        "p50_ms": _percentile_ms(ok_latencies, 50),
        "p90_ms": _percentile_ms(ok_latencies, 90),
        "p99_ms": _percentile_ms(ok_latencies, 99),
        "throughput_rps": round(len(deliveries) / elapsed, 1)
        if elapsed > 0 else None,
        "deadline_budget_ms": round(budget * 1e3, 1),
        "shed": stats["shed"],
        "restarts": stats["engine_restarts"],
        "batches": stats["batches_served"],
        "queue_high_water": stats["queue_high_water"],
    }
    log(f"  {name} T={threads} {regime}: {len(submitted)} requests, "
        f"p50/p90/p99 = {record_out['p50_ms']}/{record_out['p90_ms']}/"
        f"{record_out['p99_ms']} ms, {record_out['throughput_rps']} req/s, "
        f"{len(lost)} lost, {len(duplicated)} dup, "
        f"{stats['engine_restarts']} restart(s), {stats['shed']} shed")
    return record_out, lost, duplicated


def bench_net(name, threads, requests, budget, mean_gap, seed, log):
    """Healthy + chaos regimes at every team width for one net."""
    violations = []
    per_team = {}
    for team in threads:
        entry = {}
        for regime in ("healthy", "chaos"):
            # A fresh engine per regime; the identical seeded trace.
            probe = build_net(name, phase="TEST")
            from repro.serve.engine import _swap_in_staged_sources

            shape = _swap_in_staged_sources(probe, 1)[0].shape
            trace = RequestTrace.generate(
                requests, shape, seed=seed, mean_interarrival=mean_gap,
                budget=budget,
            )
            record, lost, duplicated = _run_regime(
                name, team, trace, regime, max_batch=8,
                capacity=64, budget=budget, seed=seed, log=log,
            )
            entry[regime] = record
            if lost or duplicated:
                violations.append((name, team, regime, len(lost),
                                   len(duplicated)))
        per_team[str(team)] = entry
    return {"requests": requests, "budget_s": budget,
            "threads": per_team}, violations


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro.tools.bench_serve")
    parser.add_argument("--nets", default=",".join(DEFAULT_NETS),
                        help="comma-separated zoo nets "
                             f"(default {','.join(DEFAULT_NETS)})")
    parser.add_argument("--threads", default=",".join(
                            str(t) for t in DEFAULT_THREADS),
                        help="comma-separated team widths (default "
                             f"{','.join(str(t) for t in DEFAULT_THREADS)})")
    parser.add_argument("--requests", type=int, default=DEFAULT_REQUESTS,
                        help="trace length per regime "
                             f"(default {DEFAULT_REQUESTS}; the chaos "
                             "storm adds more)")
    parser.add_argument("--budget", type=float, default=DEFAULT_BUDGET_S,
                        help="per-request deadline budget in seconds "
                             f"(default {DEFAULT_BUDGET_S})")
    parser.add_argument("--mean-gap", type=float,
                        default=DEFAULT_MEAN_GAP_S,
                        help="mean inter-arrival gap in seconds "
                             f"(default {DEFAULT_MEAN_GAP_S})")
    parser.add_argument("--seed", type=int, default=0,
                        help="trace seed (default 0)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the JSON report here")
    parser.add_argument("--json", action="store_true",
                        help="print the JSON report to stdout")
    parser.add_argument("--gate-latency", action="store_true",
                        help="also fail when the healthy p99 exceeds the "
                             "deadline budget (opt-in: wall-clock gating "
                             "flakes on loaded hosts)")
    args = parser.parse_args(argv)

    if args.requests < 10:
        parser.error(f"--requests must be >= 10, got {args.requests}")
    if args.budget <= 0:
        parser.error(f"--budget must be > 0, got {args.budget}")

    nets = [n for n in args.nets.split(",") if n]
    threads = [int(t) for t in args.threads.split(",") if t]

    per_net = {}
    all_violations = []
    for name in nets:
        print(f"load-testing {name} ({args.requests} requests/regime, "
              f"budget {args.budget}s) ...")
        per_net[name], violations = bench_net(
            name, threads, args.requests, args.budget, args.mean_gap,
            args.seed, log=print,
        )
        all_violations.extend(violations)

    result = envelope(
        kind="serve",
        timer={"iters": args.requests, "warmup": 0,
               "clock": "monotonic", "blas": _BLAS_PIN},
        nets=per_net,
    )

    if args.out:
        dump_bench(result, args.out)
        print(f"report written to {args.out}")
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))

    status = 0
    if all_violations:
        for name, team, regime, lost, dup in all_violations:
            print(f"ROBUSTNESS VIOLATION {name} T={team} {regime}: "
                  f"{lost} lost, {dup} duplicated", file=sys.stderr)
        status = 1
    if args.gate_latency:
        for name, data in result["nets"].items():
            for team, entry in data["threads"].items():
                healthy = entry["healthy"]
                p99 = healthy["p99_ms"]
                if p99 is not None and \
                        p99 > healthy["deadline_budget_ms"]:
                    print(f"LATENCY GATE {name} T={team}: healthy p99 "
                          f"{p99}ms exceeds the "
                          f"{healthy['deadline_budget_ms']}ms budget",
                          file=sys.stderr)
                    status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
