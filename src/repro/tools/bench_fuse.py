"""Graph-compiler benchmark (``BENCH_fuse.json``).

For each zoo net and team size, runs the same training iterations three
ways through :class:`~repro.core.ParallelExecutor`:

* **uniform** — the unfused net under the executor-wide uniform
  strategy (the pre-planner baseline);
* **planned** — the unfused net under the per-layer
  :class:`~repro.core.ExecutionPlan` that plancheck searches out of the
  cost model (the PR-6 configuration);
* **fused** — the graph compiler's output: the fused spec, the plan
  searched *for the fused spec*, and the static memory arena applied.

All three use the blockwise reduction base mode, so each run is bitwise
invariant and the final parameter gradients must agree exactly across
configurations; ``bitwise_match`` records that.  Alongside wall-clock,
the report carries the arena's activation-memory accounting
(individually-allocated bytes vs arena bytes) and the scratch pool's
steady-state allocation count over the timed iterations — zero misses
means the im2col buffers never hit the allocator after warmup.

Example::

    python -m repro.tools.bench_fuse --iters 5 --out BENCH_fuse.json
    python -m repro.tools.bench_fuse --nets lenet --threads 8 --json

The committed ``BENCH_fuse.json`` at the repo root is the output of the
default invocation on the CI container, in the ``repro-bench/1``
envelope (see :mod:`repro.bench.schema`).  BLAS thread pools are pinned
to 1 before numpy loads (see :mod:`repro.bench.pinning`); export one of
the ``*_NUM_THREADS`` variables to override.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.bench.pinning import pin_blas_threads

#: Must run before the numpy-importing repro imports below, or the BLAS
#: pools have already sized themselves from the ambient environment.
_BLAS_PIN = pin_blas_threads()

import numpy as np  # noqa: E402

from repro.analysis.plancheck import plan_spec  # noqa: E402
from repro.bench.schema import dump_bench, envelope  # noqa: E402
from repro.compiler.arena import apply_arena, plan_arena  # noqa: E402
from repro.compiler.fuse import fuse_spec  # noqa: E402
from repro.compiler.scratch import pool_stats, reset_pool_stats  # noqa: E402
from repro.core import ParallelExecutor  # noqa: E402
from repro.framework.net import Net  # noqa: E402

DEFAULT_NETS = ("lenet", "cifar10", "mlp")
DEFAULT_THREADS = (1, 2, 8)


def _grad_state(net):
    """Concatenated parameter-gradient bytes after the last iteration.

    Fusion preserves the learnable-parameter order (middle blobs append
    directly after their primary's), so the concatenation is comparable
    across the unfused and fused configurations.
    """
    parts = []
    for layer in net.layers:
        for blob in layer.blobs:
            parts.append(np.ascontiguousarray(blob.diff).tobytes())
    return b"".join(parts)


def _timed_run(spec, threads, iters, warmup, plan, arena=False):
    """Wall-clock us/iter plus grads and steady-state pool misses."""
    net = Net(spec, phase="TRAIN")
    if arena:
        apply_arena(net)
    executor = ParallelExecutor(
        num_threads=threads, reduction="blockwise", plan=plan
    )
    try:
        for _ in range(warmup):
            net.clear_param_diffs()
            executor.forward(net)
            executor.backward(net)
        reset_pool_stats()
        start = time.perf_counter()
        for _ in range(iters):
            net.clear_param_diffs()
            executor.forward(net)
            executor.backward(net)
        elapsed = time.perf_counter() - start
        misses = pool_stats()["misses"]
        grads = _grad_state(net)
    finally:
        executor.close()
    return elapsed * 1e6 / max(iters, 1), grads, misses


def bench_net(name, threads, iters, warmup, log=lambda msg: None):
    """Benchmark one net at every team size; returns a JSON-ready dict."""
    from repro.data import register_default_sources
    from repro.zoo.build import _SPECS

    register_default_sources()
    spec_fn = _SPECS[name][0]
    fused_spec, fusion = fuse_spec(spec_fn())

    # Activation-memory accounting is team-size independent.
    unfused_bytes = plan_arena(Net(spec_fn(), phase="TRAIN")).baseline_bytes
    arena_report = plan_arena(Net(fused_spec, phase="TRAIN"))

    per_team = {}
    batch = None
    for team in threads:
        base_report = plan_spec(spec_fn(), net_name=name, threads=team)
        fuse_report = plan_spec(fused_spec, net_name=name, threads=team)
        batch = fuse_report.plan.batch if fuse_report.plan else batch

        uniform_us, uniform_grads, uniform_misses = _timed_run(
            spec_fn(), team, iters, warmup, plan=None)
        planned_us, planned_grads, planned_misses = _timed_run(
            spec_fn(), team, iters, warmup, plan=base_report.plan)
        fused_us, fused_grads, fused_misses = _timed_run(
            fuse_spec(spec_fn())[0], team, iters, warmup,
            plan=fuse_report.plan, arena=True)

        entry = {
            "uniform_us_per_iter": round(uniform_us, 1),
            "planned_us_per_iter": round(planned_us, 1),
            "fused_us_per_iter": round(fused_us, 1),
            "speedup_vs_uniform": round(uniform_us / fused_us, 3),
            "speedup_vs_planned": round(planned_us / fused_us, 3),
            "predicted_fused_us": round(fuse_report.predicted_us, 1),
            "predicted_planned_us": round(base_report.predicted_us, 1),
            "bitwise_match": (uniform_grads == planned_grads
                              and uniform_grads == fused_grads),
            "scratch_misses": {
                "uniform": uniform_misses,
                "planned": planned_misses,
                "fused": fused_misses,
            },
        }
        per_team[str(team)] = entry
        log(f"  {name} T={team}: uniform {uniform_us:8.1f}us, "
            f"planned {planned_us:8.1f}us, fused {fused_us:8.1f}us "
            f"({entry['speedup_vs_uniform']:.2f}x vs uniform, "
            f"{entry['speedup_vs_planned']:.2f}x vs planned, "
            f"bitwise={'ok' if entry['bitwise_match'] else 'MISMATCH'}, "
            f"misses={fused_misses})")
    return {
        "batch": batch,
        "iters": iters,
        "warmup": warmup,
        "fused_chains": [
            f"{d.primary}<-{'+'.join(d.absorbed)}" for d in fusion.fused
        ],
        "inplace_rewrites": len(fusion.rewrites),
        "activation_bytes_unfused": unfused_bytes,
        "activation_bytes_fused": arena_report.baseline_bytes,
        "activation_bytes_arena": arena_report.arena_bytes,
        "threads": per_team,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro.tools.bench_fuse")
    parser.add_argument("--nets", default=",".join(DEFAULT_NETS),
                        help="comma-separated zoo nets "
                             f"(default {','.join(DEFAULT_NETS)})")
    parser.add_argument("--threads", default=",".join(
                            str(t) for t in DEFAULT_THREADS),
                        help="comma-separated team sizes (default 1,2,8)")
    parser.add_argument("--iters", type=int, default=5,
                        help="timed iterations per configuration")
    parser.add_argument("--warmup", type=int, default=1,
                        help="untimed warmup iterations (default 1)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the JSON report here")
    parser.add_argument("--json", action="store_true",
                        help="print the JSON report to stdout")
    args = parser.parse_args(argv)

    nets = [n for n in args.nets.split(",") if n]
    threads = [int(t) for t in args.threads.split(",") if t]

    per_net = {}
    for name in nets:
        print(f"benchmarking {name} (iters={args.iters}, "
              f"warmup={args.warmup}) ...")
        per_net[name] = bench_net(
            name, threads, args.iters, args.warmup, log=print
        )
    result = envelope(
        kind="fuse",
        timer={"iters": args.iters, "warmup": args.warmup,
               "clock": "perf_counter", "blas": _BLAS_PIN},
        nets=per_net,
    )

    mismatches = [
        (name, team)
        for name, data in result["nets"].items()
        for team, entry in data["threads"].items()
        if not entry["bitwise_match"]
    ]
    if args.out:
        dump_bench(result, args.out)
        print(f"report written to {args.out}")
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
    if mismatches:
        print(f"bitwise mismatch in {mismatches}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
