"""Planned-vs-uniform wall-clock benchmark (``BENCH_plan.json``).

For each zoo net and team size, runs the same training iterations twice
through :class:`~repro.core.ParallelExecutor` — once with the uniform
executor-wide strategy and once with the per-layer
:class:`~repro.core.ExecutionPlan` that ``repro.analysis plancheck``
searches out of the cost model — and records the measured wall-clock
per iteration next to the model's predictions.  Both configurations
use the blockwise reduction base mode, so the planned and uniform runs
are each bitwise invariant and the final parameter gradients must
match exactly; the benchmark checks that too (``bitwise_match``).

Example::

    python -m repro.tools.bench_plan --iters 5 --out BENCH_plan.json
    python -m repro.tools.bench_plan --nets lenet --threads 8 --json

The committed ``BENCH_plan.json`` at the repo root is the output of
the default invocation on the CI container, in the ``repro-bench/1``
envelope (see :mod:`repro.bench.schema`).  BLAS thread pools are pinned
to 1 before numpy loads (see :mod:`repro.bench.pinning`); export one of
the ``*_NUM_THREADS`` variables to override.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.bench.pinning import pin_blas_threads

#: Must run before the numpy-importing repro imports below, or the BLAS
#: pools have already sized themselves from the ambient environment.
_BLAS_PIN = pin_blas_threads()

import numpy as np  # noqa: E402

from repro.analysis.plancheck import plan_spec  # noqa: E402
from repro.bench.schema import dump_bench, envelope  # noqa: E402
from repro.core import ParallelExecutor  # noqa: E402
from repro.zoo import build_net  # noqa: E402

DEFAULT_NETS = ("lenet", "cifar10", "mlp")
DEFAULT_THREADS = (1, 2, 8)


def _grad_state(net):
    """Concatenated parameter-gradient bytes after the last iteration."""
    parts = []
    for layer in net.layers:
        for blob in layer.blobs:
            parts.append(np.ascontiguousarray(blob.diff).tobytes())
    return b"".join(parts)


def _timed_run(name, threads, iters, warmup, plan):
    """Wall-clock us/iter for ``iters`` fwd+bwd passes of a fresh net.

    ``plan=None`` is the uniform configuration; the executor-wide mode
    is blockwise either way so both runs sit at the same claimed tier.
    """
    net = build_net(name)
    executor = ParallelExecutor(
        num_threads=threads, reduction="blockwise", plan=plan
    )
    try:
        for _ in range(warmup):
            net.clear_param_diffs()
            executor.forward(net)
            executor.backward(net)
        start = time.perf_counter()
        for _ in range(iters):
            net.clear_param_diffs()
            executor.forward(net)
            executor.backward(net)
        elapsed = time.perf_counter() - start
        grads = _grad_state(net)
    finally:
        executor.close()
    return elapsed * 1e6 / max(iters, 1), grads


def bench_net(name, threads, iters, warmup, log=lambda msg: None):
    """Benchmark one net at every team size; returns a JSON-ready dict."""
    from repro.data import register_default_sources
    from repro.zoo.build import _SPECS

    register_default_sources()
    spec_fn = _SPECS[name][0]
    per_team = {}
    for team in threads:
        report = plan_spec(spec_fn(), net_name=name, threads=team)
        plan = report.plan
        uniform_us, uniform_grads = _timed_run(name, team, iters, warmup,
                                               plan=None)
        planned_us, planned_grads = _timed_run(name, team, iters, warmup,
                                               plan=plan)
        entry = {
            "uniform_us_per_iter": round(uniform_us, 1),
            "planned_us_per_iter": round(planned_us, 1),
            "speedup": round(uniform_us / planned_us, 3),
            "predicted_uniform_us": round(report.uniform_us, 1),
            "predicted_planned_us": round(report.predicted_us, 1),
            "predicted_speedup": round(report.predicted_speedup, 3),
            "bitwise_match": uniform_grads == planned_grads,
            "plan": {
                lp.layer: f"t={lp.threads} g={lp.granularity}"
                          + (f" {lp.reduction}" if lp.reduction else "")
                for lp in sorted(plan.layers.values(),
                                 key=lambda lp: lp.layer)
            },
        }
        per_team[str(team)] = entry
        log(f"  {name} T={team}: uniform {uniform_us:8.1f}us/iter, "
            f"planned {planned_us:8.1f}us/iter "
            f"({entry['speedup']:.2f}x measured, "
            f"{entry['predicted_speedup']:.2f}x predicted, "
            f"bitwise={'ok' if entry['bitwise_match'] else 'MISMATCH'})")
    return {
        "batch": plan.batch,
        "iters": iters,
        "warmup": warmup,
        "threads": per_team,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro.tools.bench_plan")
    parser.add_argument("--nets", default=",".join(DEFAULT_NETS),
                        help="comma-separated zoo nets "
                             f"(default {','.join(DEFAULT_NETS)})")
    parser.add_argument("--threads", default=",".join(
                            str(t) for t in DEFAULT_THREADS),
                        help="comma-separated team sizes (default 1,2,8)")
    parser.add_argument("--iters", type=int, default=5,
                        help="timed iterations per configuration")
    parser.add_argument("--warmup", type=int, default=1,
                        help="untimed warmup iterations (default 1)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the JSON report here")
    parser.add_argument("--json", action="store_true",
                        help="print the JSON report to stdout")
    args = parser.parse_args(argv)

    nets = [n for n in args.nets.split(",") if n]
    threads = [int(t) for t in args.threads.split(",") if t]

    per_net = {}
    for name in nets:
        print(f"benchmarking {name} (iters={args.iters}, "
              f"warmup={args.warmup}) ...")
        per_net[name] = bench_net(
            name, threads, args.iters, args.warmup, log=print
        )
    result = envelope(
        kind="plan",
        timer={"iters": args.iters, "warmup": args.warmup,
               "clock": "perf_counter", "blas": _BLAS_PIN},
        nets=per_net,
    )

    mismatches = [
        (name, team)
        for name, data in result["nets"].items()
        for team, entry in data["threads"].items()
        if not entry["bitwise_match"]
    ]
    if args.out:
        dump_bench(result, args.out)
        print(f"report written to {args.out}")
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
    if mismatches:
        print(f"bitwise mismatch in {mismatches}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
