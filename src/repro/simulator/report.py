"""Table builders for the reproduction figures.

Each function returns plain data (lists of rows) plus a ``format_table``
helper for the benchmark harness to print — the same rows/series the
paper's figures plot.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.simulator.cost_model import LayerCost
from repro.simulator.cpu_model import CPUModel
from repro.simulator.gpu_model import GPUModel

THREAD_COUNTS = (1, 2, 4, 8, 12, 16)


def layer_time_table(
    costs: Sequence[LayerCost],
    model: CPUModel,
    thread_counts: Sequence[int] = THREAD_COUNTS,
) -> Tuple[List[str], List[List[float]]]:
    """Figures 4 / 7: absolute per-layer time (us) per thread count.

    Returns ``(keys, rows)`` where ``keys`` are layer-pass labels and
    ``rows[i]`` holds the times for ``thread_counts[i]``.
    """
    keys = [cost.key for cost in costs]
    rows = []
    for threads in thread_counts:
        times = model.layer_times(costs, threads)
        rows.append([times[key] for key in keys])
    return keys, rows


def relative_weights(
    costs: Sequence[LayerCost], model: CPUModel, threads: int
) -> Dict[str, float]:
    """Share of the iteration time per layer pass at ``threads``."""
    times = model.layer_times(costs, threads)
    total = sum(times.values())
    return {key: value / total for key, value in times.items()}


def layer_scalability_table(
    costs: Sequence[LayerCost],
    model: CPUModel,
    thread_counts: Sequence[int] = (2, 4, 8, 12, 16),
) -> Tuple[List[str], List[List[float]]]:
    """Figures 5 / 8: per-layer speedup over serial, per thread count."""
    keys = [cost.key for cost in costs]
    rows = []
    for threads in thread_counts:
        speedups = model.layer_speedups(costs, threads)
        rows.append([speedups[key] for key in keys])
    return keys, rows


def overall_speedup_table(
    costs: Sequence[LayerCost],
    cpu: CPUModel,
    plain_gpu: GPUModel,
    cudnn_gpu: GPUModel,
    thread_counts: Sequence[int] = (2, 4, 8, 12, 16),
) -> Dict[str, float]:
    """Figures 6 / 9 (left): overall speedups of every configuration."""
    out: Dict[str, float] = {}
    for threads in thread_counts:
        out[f"OpenMP-{threads}T"] = cpu.speedup(costs, threads)
    out["plain-GPU"] = plain_gpu.speedup(costs)
    out["cuDNN-GPU"] = cudnn_gpu.speedup(costs)
    return out


def gpu_layer_speedup_table(
    costs: Sequence[LayerCost],
    plain_gpu: GPUModel,
    cudnn_gpu: GPUModel,
) -> Tuple[List[str], List[float], List[float]]:
    """Figures 6 / 9 (right): per-layer GPU speedups, both versions."""
    keys = [cost.key for cost in costs]
    plain = plain_gpu.layer_speedups(costs)
    cudnn = cudnn_gpu.layer_speedups(costs)
    return keys, [plain[k] for k in keys], [cudnn[k] for k in keys]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], width: int = 12
) -> str:
    """Fixed-width text table for benchmark output."""
    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.2f}".rjust(width)
        return str(value).rjust(width)

    lines = ["".join(str(h).rjust(width) for h in headers)]
    lines.append("-" * (width * len(headers)))
    for row in rows:
        lines.append("".join(fmt(v) for v in row))
    return "\n".join(lines)
