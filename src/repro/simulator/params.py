"""Machine model constants, with provenance notes.

All throughputs are in single-precision FLOP/us and bytes/us (i.e. MFLOP/s
and MB/s divided by 1e0... everything is "per microsecond" so modelled
times come out in the microseconds the paper's Figures 4 and 7 use).

CPU — Intel Xeon E5-2667 v2 (the paper's testbed): 2 sockets x 8 cores at
3.3 GHz, AVX: 8 SP FLOPs x 2 (FMA-less Ivy Bridge: 1 mul + 1 add issue)
x 3.3 GHz = ~52.8 GFLOP/s peak per core; OpenBLAS sgemm sustains roughly
70%.  Per-socket memory bandwidth ~59.7 GB/s (4x DDR3-1866); remote
(QPI) accesses are roughly 2x slower.

GPU — NVIDIA K40: 4.29 TFLOP/s SP peak, 288 GB/s GDDR5, ~10 us kernel
launch latency (CUDA 7 era).  Efficiency factors distinguish the two
fine-grain implementations the paper compares: the *plain* native Caffe
kernels (poor convolution efficiency — the paper's central observation)
and the *cuDNN v2* kernels (heavily tuned convolutions, slightly worse
pooling dispatch).  The factors are calibrated so the per-layer speedups
on the paper's exact layer shapes land in the reported ranges; they are
model inputs, not measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple


@dataclass(frozen=True)
class CPUParams:
    """Coarse-grain CPU model constants.

    The NUMA-related knobs encode the paper's "sequential memory
    allocation" observation: the net is initialized by one thread, so all
    blob memory lands on node 0.  Threads on the second socket therefore
    (a) run compute-bound work at reduced efficiency (operand fetch over
    QPI) and (b) add only QPI bandwidth, not a second memory node, to
    DRAM-bound work.  Small working sets stream from cache instead and
    keep scaling — which is why the paper's ReLU/pool layers reach 11-13x
    at 16 threads while convolutions stall near 9x.
    """

    cores: int = 16
    cores_per_node: int = 8            # 2 NUMA nodes
    core_flops_per_us: float = 36960.0  # 52.8 GFLOP/s peak x 0.70 BLAS eff
    #: Relative arithmetic efficiency of non-BLAS layer bodies (scalar
    #: compares, exp/pow, scattered adds) vs. the BLAS gemm rate.
    op_efficiency: Dict[str, float] = field(default_factory=lambda: {
        "Convolution": 1.0,
        "InnerProduct": 1.0,
        "Pooling": 0.02,
        "LRN": 0.07,
        "ReLU": 0.12,
        "Sigmoid": 0.05,
        "TanH": 0.05,
        "Power": 0.10,
        "Softmax": 0.03,
        "SoftmaxWithLoss": 0.03,
        "EuclideanLoss": 0.10,
        "Data": 0.25,
    })
    default_op_efficiency: float = 0.15
    node_bw_bytes_per_us: float = 59700.0  # 59.7 GB/s per socket
    qpi_bw_bytes_per_us: float = 14000.0   # cross-socket link (~14 GB/s)
    bw_saturation: float = 0.35      # per-extra-core DRAM contention
    single_core_bw_share: float = 0.22  # one core extracts ~22% of a socket
    cache_bw_bytes_per_us: float = 22000.0  # per-core L2/L3 streaming
    cache_resident_bytes: float = 900e3     # per-thread set that stays cached
    numa_compute_penalty: float = 0.42  # efficiency loss of remote cores
    dispatch_us: float = 0.1        # per-BLAS-call / per-segment dispatch
    fork_join_us: float = 5.0        # parallel region open/close
    merge_bw_bytes_per_us: float = 6000.0  # ordered-reduction add throughput
    locality_miss: float = 0.6       # input fraction re-fetched on a
    # data-thread distribution mismatch (grows with threads; see model)
    serial_bw_bytes_per_us: float = 12000.0  # single-thread streaming copy


@dataclass(frozen=True)
class GPUParams:
    """Fine-grain GPU model constants.

    ``efficiency`` maps ``(layer_type, pass)`` to the fraction of peak
    the implementation achieves for compute-bound work; ``bw_efficiency``
    the same for memory-bound work.  Missing entries fall back to
    ``default_eff`` / ``default_bw_eff``.
    """

    name: str = "K40"
    peak_flops_per_us: float = 4.29e6  # 4.29 TFLOP/s in FLOP/us
    bw_bytes_per_us: float = 288e3     # 288 GB/s in bytes/us
    launch_us: float = 7.0             # kernel launch + driver overhead
    default_eff: float = 0.05
    default_bw_eff: float = 0.30
    efficiency: Dict[Tuple[str, str], float] = field(default_factory=dict)
    bw_efficiency: Dict[Tuple[str, str], float] = field(default_factory=dict)
    kernels_per_layer: Dict[str, int] = field(default_factory=dict)
    #: Convolution kernel efficiency model: eff = min(cap, scale*sqrt(flops)).
    #: Zero scale disables the law and uses the table entry instead.
    conv_eff_scale: float = 0.0
    conv_eff_cap: float = 1.0
    #: Pooling-backward plane-size reference for the cuDNN dispatch model
    #: (0 disables the modifier).
    pool_plane_ref: int = 0
    #: Apply the input-channel starvation law to conv backward (plain).
    conv_bwd_channel_law: bool = False
    #: Map-size reference for conv-backward tiling (cuDNN; 0 disables).
    conv_bwd_plane_ref: int = 0


XEON_E5_2667V2 = CPUParams()

# Native Caffe GPU kernels ("plain-GPU"): hand-written, one thread per
# output element.  Convolutions perform terribly (no shared-memory tiling
# in the era's native path — the paper measures 0.43x-2.86x on MNIST);
# pooling and LRN, being embarrassingly parallel and memory-light per
# output, fly.
K40_PLAIN = GPUParams(
    name="K40-plain",
    conv_eff_scale=1.5e-6,
    conv_eff_cap=0.05,
    conv_bwd_channel_law=True,
    efficiency={
        ("InnerProduct", "forward"): 0.10,
        ("InnerProduct", "backward"): 0.18,
        ("SoftmaxWithLoss", "forward"): 0.01,
        ("SoftmaxWithLoss", "backward"): 0.01,
    },
    bw_efficiency={
        ("Pooling", "forward"): 1.0,
        ("Pooling:AVE", "forward"): 0.256,
        ("Pooling", "backward"): 0.25,
        ("LRN", "forward"): 0.85,
        ("LRN", "backward"): 0.50,
        ("ReLU", "forward"): 0.60,
        ("ReLU", "backward"): 0.60,
        ("InnerProduct", "forward"): 0.35,
        ("InnerProduct", "backward"): 0.55,
        ("Data", "forward"): 0.10,
    },
)

# cuDNN v2: convolution kernels approach peak; the cuDNN pooling path has
# extra tensor-descriptor dispatch that halves small-plane pooling
# throughput (the paper's pool2/pool3 regressions), and the cuDNN ReLU is
# likewise a bit slower than the native one.
K40_CUDNN = GPUParams(
    name="K40-cuDNN",
    conv_eff_scale=2.0e-5,
    conv_eff_cap=0.42,
    pool_plane_ref=128,
    conv_bwd_plane_ref=576,
    efficiency={
        ("InnerProduct", "forward"): 0.10,
        ("InnerProduct", "backward"): 0.18,
        ("SoftmaxWithLoss", "forward"): 0.01,
        ("SoftmaxWithLoss", "backward"): 0.01,
    },
    bw_efficiency={
        ("Pooling", "forward"): 0.33,
        ("Pooling:AVE", "forward"): 0.0675,
        ("Pooling", "backward"): 0.60,
        ("Pooling:AVE", "backward"): 0.20,
        ("LRN", "forward"): 0.85,
        ("LRN", "backward"): 0.50,
        ("ReLU", "forward"): 0.15,
        ("ReLU", "backward"): 0.23,
        ("InnerProduct", "forward"): 0.35,
        ("InnerProduct", "backward"): 0.70,
        ("Data", "forward"): 0.10,
    },
)
