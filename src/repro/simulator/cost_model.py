"""Per-layer cost extraction from real networks.

For every layer of a (already shaped) :class:`~repro.framework.net.Net`,
this module computes the quantities the machine models consume: floating
point operations, bytes streamed, the coalesced iteration space the
coarse-grain runtime distributes, the data-thread *distribution
signature* used by the locality model, and the privatized reduction
volume of the backward pass.

Everything is derived from the layer objects' real attributes (kernel
sizes, blob shapes), so the models follow the actual networks — changing
the prototxt changes the figures, as on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.framework.layers.conv import ConvolutionLayer
from repro.framework.layers.data import DataLayer, InputLayer, MemoryDataLayer
from repro.framework.layers.inner_product import InnerProductLayer
from repro.framework.layers.loss import LossLayer
from repro.framework.layers.lrn import LRNLayer
from repro.framework.layers.neuron import NeuronLayer
from repro.framework.layers.pooling import PoolingLayer
from repro.framework.layers.softmax import SoftmaxLayer
from repro.framework.layers.accuracy import AccuracyLayer
from repro.framework.net import Net

BYTES = 4  # single precision


@dataclass
class LayerCost:
    """Work descriptor for one layer and one pass."""

    name: str
    type: str
    pass_: str              # "forward" or "backward"
    flops: float            # arithmetic operations
    bytes: float            # streamed bytes (inputs + outputs once each)
    space: int              # coalesced iterations available to the runtime
    segments: int           # BLAS-call / segment count (dispatch overhead)
    dist: str               # data-thread distribution signature
    serial: bool = False    # executes sequentially (data layers)
    reduction_bytes: float = 0.0  # privatized coefficient gradients
    input_bytes: float = 0.0      # bytes read from the previous layer
    variant: str = ""       # sub-type (e.g. pooling method MAX/AVE)
    channels_in: int = 0    # input channels (convolution kernels)
    plane_out: int = 0      # output cells per plane (pooling kernels)

    @property
    def key(self) -> str:
        return f"{self.name}.{'fwd' if self.pass_ == 'forward' else 'bwd'}"


def _conv_costs(layer: ConvolutionLayer, bottom, top) -> List[LayerCost]:
    n, c, h, w = bottom[0].shape
    _, k, oh, ow = top[0].shape
    kernel = layer.kernel_h * layer.kernel_w
    macs = n * k * oh * ow * c * kernel / layer.group
    fwd_flops = 2.0 * macs + n * k * oh * ow  # + bias add
    col_bytes = n * (c * kernel * oh * ow) * BYTES  # im2col materialization
    in_bytes = n * c * h * w * BYTES
    out_bytes = n * k * oh * ow * BYTES
    weight_bytes = layer.blobs[0].count * BYTES
    fwd = LayerCost(
        name=layer.name, type="Convolution", pass_="forward",
        flops=fwd_flops, bytes=in_bytes + col_bytes + out_bytes + weight_bytes,
        space=n, segments=n * layer.group, dist="sample",
        input_bytes=in_bytes, channels_in=c, plane_out=oh * ow,
    )
    # backward: dW (gemm), dX (gemm + col2im) — ~2x forward arithmetic.
    bwd_flops = 4.0 * macs + n * k * oh * ow
    params_bytes = sum(b.count for b in layer.blobs) * BYTES
    bwd = LayerCost(
        name=layer.name, type="Convolution", pass_="backward",
        flops=bwd_flops,
        bytes=2 * col_bytes + in_bytes + out_bytes + 2 * weight_bytes,
        space=n, segments=2 * n * layer.group, dist="sample",
        reduction_bytes=params_bytes, input_bytes=out_bytes, channels_in=c,
        plane_out=oh * ow,
    )
    return [fwd, bwd]


def _pool_costs(layer: PoolingLayer, bottom, top) -> List[LayerCost]:
    n, c, h, w = bottom[0].shape
    _, _, oh, ow = top[0].shape
    window = layer.kernel_h * layer.kernel_w
    fwd_flops = n * c * oh * ow * window  # one compare/add per window elem
    in_bytes = n * c * h * w * BYTES
    out_bytes = n * c * oh * ow * BYTES
    idx_bytes = out_bytes if layer.method == "MAX" else 0
    fwd = LayerCost(
        name=layer.name, type="Pooling", pass_="forward",
        flops=fwd_flops, bytes=in_bytes + out_bytes + idx_bytes,
        space=n * c, segments=n * c, dist="sample-channel",
        input_bytes=in_bytes, variant=layer.method, plane_out=oh * ow,
    )
    bwd = LayerCost(
        name=layer.name, type="Pooling", pass_="backward",
        flops=n * c * oh * ow * (window if layer.method == "AVE" else 1),
        bytes=in_bytes + out_bytes + idx_bytes,
        space=n * c, segments=n * c, dist="sample-channel",
        input_bytes=out_bytes, variant=layer.method, plane_out=oh * ow,
    )
    return [fwd, bwd]


def _ip_costs(layer: InnerProductLayer, bottom, top) -> List[LayerCost]:
    n = layer.outer
    macs = n * layer.num_output * layer.inner
    in_bytes = n * layer.inner * BYTES
    out_bytes = n * layer.num_output * BYTES
    weight_bytes = layer.blobs[0].count * BYTES
    # Every sample's gemv re-reads the full weight matrix; large weights
    # do not stay cache-resident, so the layer is weight-traffic bound —
    # the mechanism behind the paper's ip1 plateau (Section 4.1.1).
    refetch = min(n, 16)
    fwd = LayerCost(
        name=layer.name, type="InnerProduct", pass_="forward",
        flops=2.0 * macs + out_bytes / BYTES,
        bytes=in_bytes + out_bytes + weight_bytes * refetch,
        space=n, segments=n, dist="sample", input_bytes=in_bytes,
    )
    # backward: dX over samples + dW over output rows (no reduction).
    bwd = LayerCost(
        name=layer.name, type="InnerProduct", pass_="backward",
        flops=4.0 * macs,
        bytes=2 * in_bytes + 2 * out_bytes + weight_bytes * refetch,
        space=n, segments=n + layer.num_output, dist="sample",
        input_bytes=out_bytes,
    )
    return [fwd, bwd]


def _lrn_costs(layer: LRNLayer, bottom, top) -> List[LayerCost]:
    n, c, h, w = bottom[0].shape
    elems = n * c * h * w
    # square, window prefix-sum, scale, power per element.
    fwd = LayerCost(
        name=layer.name, type="LRN", pass_="forward",
        flops=6.0 * elems, bytes=3 * elems * BYTES,
        space=n, segments=n, dist="sample",
        input_bytes=elems * BYTES,
    )
    bwd = LayerCost(
        name=layer.name, type="LRN", pass_="backward",
        flops=8.0 * elems, bytes=5 * elems * BYTES,
        space=n, segments=n, dist="sample",
        input_bytes=elems * BYTES,
    )
    return [fwd, bwd]


def _neuron_costs(layer: NeuronLayer, bottom, top) -> List[LayerCost]:
    elems = bottom[0].count
    batch = bottom[0].shape[0] if bottom[0].num_axes else 1
    fwd = LayerCost(
        name=layer.name, type=layer.type, pass_="forward",
        flops=float(elems), bytes=2 * elems * BYTES,
        space=elems, segments=max(batch, 1), dist="element",
        input_bytes=elems * BYTES,
    )
    bwd = LayerCost(
        name=layer.name, type=layer.type, pass_="backward",
        flops=float(elems), bytes=3 * elems * BYTES,
        space=elems, segments=max(batch, 1), dist="element",
        input_bytes=elems * BYTES,
    )
    return [fwd, bwd]


def _loss_costs(layer, bottom, top) -> List[LayerCost]:
    n = bottom[0].shape[0]
    classes = bottom[0].count // n
    elems = n * classes
    fwd = LayerCost(
        name=layer.name, type=layer.type, pass_="forward",
        flops=5.0 * elems, bytes=2 * elems * BYTES,
        space=n, segments=n, dist="sample",
        input_bytes=elems * BYTES,
    )
    bwd = LayerCost(
        name=layer.name, type=layer.type, pass_="backward",
        flops=2.0 * elems, bytes=2 * elems * BYTES,
        space=n, segments=n, dist="sample",
        input_bytes=elems * BYTES,
    )
    return [fwd, bwd]


def _data_costs(layer, bottom, top) -> List[LayerCost]:
    out_bytes = sum(t.count for t in top) * BYTES
    fwd = LayerCost(
        name=layer.name, type="Data", pass_="forward",
        flops=float(out_bytes / BYTES), bytes=2 * out_bytes,
        space=1, segments=1, dist="serial", serial=True,
        input_bytes=0.0,
    )
    return [fwd]  # no backward


def net_costs(net: Net, include_accuracy: bool = False) -> List[LayerCost]:
    """Extract forward and backward costs for every layer of ``net``.

    The net must have been shaped (run one forward pass first).  Costs
    come back in network order, forward pass first per layer; the
    backward entries appear for layers that participate in it.
    """
    out: List[LayerCost] = []
    for i, layer in enumerate(net.layers):
        bottom, top = net.bottoms[i], net.tops[i]
        if isinstance(layer, (DataLayer, MemoryDataLayer, InputLayer)):
            out.extend(_data_costs(layer, bottom, top))
        elif isinstance(layer, ConvolutionLayer):
            out.extend(_conv_costs(layer, bottom, top))
        elif isinstance(layer, PoolingLayer):
            out.extend(_pool_costs(layer, bottom, top))
        elif isinstance(layer, InnerProductLayer):
            out.extend(_ip_costs(layer, bottom, top))
        elif isinstance(layer, LRNLayer):
            out.extend(_lrn_costs(layer, bottom, top))
        elif isinstance(layer, NeuronLayer):
            out.extend(_neuron_costs(layer, bottom, top))
        elif isinstance(layer, (LossLayer, SoftmaxLayer)):
            out.extend(_loss_costs(layer, bottom, top))
        elif isinstance(layer, AccuracyLayer):
            if include_accuracy:
                out.extend(_loss_costs(layer, bottom, top))
        else:
            # Structural layers (Split/Concat/Flatten/...): pure copies.
            elems = sum(b.count for b in bottom)
            out.append(LayerCost(
                name=layer.name, type=layer.type, pass_="forward",
                flops=0.0, bytes=2 * elems * BYTES,
                space=max(elems, 1), segments=1, dist="element",
                input_bytes=elems * BYTES,
            ))
            out.append(LayerCost(
                name=layer.name, type=layer.type, pass_="backward",
                flops=float(elems), bytes=2 * elems * BYTES,
                space=max(elems, 1), segments=1, dist="element",
                input_bytes=elems * BYTES,
            ))
    return out


def producer_dist(costs: List[LayerCost], index: int) -> Optional[str]:
    """Distribution signature of the layer feeding ``costs[index]``.

    For a forward entry that is the previous layer's forward signature;
    for a backward entry, the *downstream* layer's backward signature
    (gradients flow backwards).  Returns None at the boundary.
    """
    cost = costs[index]
    if cost.pass_ == "forward":
        for j in range(index - 1, -1, -1):
            if costs[j].pass_ == "forward" and costs[j].name != cost.name:
                return costs[j].dist
        return None
    # Backward data flows from the *downstream* layer, which appears later
    # in this (net-ordered) list.
    for j in range(index + 1, len(costs)):
        if costs[j].pass_ == "backward" and costs[j].name != cost.name:
            return costs[j].dist
    return None
