"""Per-layer cost extraction from real networks — or from specs alone.

For every layer of a network, this module computes the quantities the
machine models consume: floating point operations, bytes streamed, the
coalesced iteration space the coarse-grain runtime distributes, the
data-thread *distribution signature* used by the locality model, and the
privatized reduction volume of the backward pass.

The per-type cost formulas are pure **geometry functions** (``conv_costs``,
``pool_costs``, ...) taking plain integers, with two front ends sharing
them:

* :func:`net_costs` reads the geometry off an instantiated (already
  shaped) :class:`~repro.framework.net.Net` — figures follow the actual
  network, as on real hardware;
* :func:`spec_costs` derives the same geometry symbolically via
  :func:`repro.framework.symbolic.infer_net`, so the simulator can run
  from a prototxt alone, without allocating a single blob.

Because both paths call the same formulas, their agreement is structural
rather than coincidental — the parity the static planner's acceptance
tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.framework.layers.accuracy import AccuracyLayer
from repro.framework.layers.conv import ConvolutionLayer, _pair
from repro.framework.layers.data import DataLayer, InputLayer, MemoryDataLayer
from repro.framework.layers.fused import (
    FusedConvolutionLayer,
    FusedEltwiseReLU,
    FusedInnerProductReLU,
    FusedScaleBias,
)
from repro.framework.layers.inner_product import InnerProductLayer
from repro.framework.layers.loss import LossLayer
from repro.framework.layers.lrn import LRNLayer
from repro.framework.layers.neuron import NeuronLayer
from repro.framework.layers.pooling import PoolingLayer
from repro.framework.layers.scale import ScaleLayer
from repro.framework.layers.softmax import SoftmaxLayer
from repro.framework.net import Net
from repro.framework.net_spec import NetSpec
from repro.framework.symbolic import infer_net

BYTES = 4  # single precision

#: Layer types (lowercased) routed to each geometry function when costing
#: a spec symbolically; mirrors the isinstance dispatch of net_costs.
_DATA_TYPES = frozenset(("data", "memorydata", "input"))
_NEURON_TYPES = frozenset((
    "relu", "sigmoid", "tanh", "power", "absval", "exp", "log", "bnll",
    "dropout",
))
_LOSS_TYPES = frozenset(("softmaxwithloss", "euclideanloss", "softmax"))


@dataclass
class LayerCost:
    """Work descriptor for one layer and one pass."""

    name: str
    type: str
    pass_: str              # "forward" or "backward"
    flops: float            # arithmetic operations
    bytes: float            # streamed bytes (inputs + outputs once each)
    space: int              # coalesced iterations available to the runtime
    segments: int           # BLAS-call / segment count (dispatch overhead)
    dist: str               # data-thread distribution signature
    serial: bool = False    # executes sequentially (data layers)
    reduction_bytes: float = 0.0  # privatized coefficient gradients
    input_bytes: float = 0.0      # bytes read from the previous layer
    variant: str = ""       # sub-type (e.g. pooling method MAX/AVE)
    channels_in: int = 0    # input channels (convolution kernels)
    plane_out: int = 0      # output cells per plane (pooling kernels)

    @property
    def key(self) -> str:
        return f"{self.name}.{'fwd' if self.pass_ == 'forward' else 'bwd'}"


# ---------------------------------------------------------------------------
# geometry functions: pure integer arithmetic, shared by both front ends
# ---------------------------------------------------------------------------
def conv_costs(
    name: str, *, n: int, c: int, h: int, w: int, k: int, oh: int, ow: int,
    kernel: int, group: int, weight_count: int, param_count: int,
) -> List[LayerCost]:
    """``kernel`` is the window area (kh*kw); ``weight_count`` the filter
    bank's element count; ``param_count`` all parameter elements."""
    macs = n * k * oh * ow * c * kernel / group
    fwd_flops = 2.0 * macs + n * k * oh * ow  # + bias add
    col_bytes = n * (c * kernel * oh * ow) * BYTES  # im2col materialization
    in_bytes = n * c * h * w * BYTES
    out_bytes = n * k * oh * ow * BYTES
    weight_bytes = weight_count * BYTES
    fwd = LayerCost(
        name=name, type="Convolution", pass_="forward",
        flops=fwd_flops, bytes=in_bytes + col_bytes + out_bytes + weight_bytes,
        space=n, segments=n * group, dist="sample",
        input_bytes=in_bytes, channels_in=c, plane_out=oh * ow,
    )
    # backward: dW (gemm), dX (gemm + col2im) — ~2x forward arithmetic.
    bwd_flops = 4.0 * macs + n * k * oh * ow
    bwd = LayerCost(
        name=name, type="Convolution", pass_="backward",
        flops=bwd_flops,
        bytes=2 * col_bytes + in_bytes + out_bytes + 2 * weight_bytes,
        space=n, segments=2 * n * group, dist="sample",
        reduction_bytes=param_count * BYTES, input_bytes=out_bytes,
        channels_in=c, plane_out=oh * ow,
    )
    return [fwd, bwd]


def pool_costs(
    name: str, *, n: int, c: int, h: int, w: int, oh: int, ow: int,
    window: int, method: str,
) -> List[LayerCost]:
    fwd_flops = n * c * oh * ow * window  # one compare/add per window elem
    in_bytes = n * c * h * w * BYTES
    out_bytes = n * c * oh * ow * BYTES
    idx_bytes = out_bytes if method == "MAX" else 0
    fwd = LayerCost(
        name=name, type="Pooling", pass_="forward",
        flops=fwd_flops, bytes=in_bytes + out_bytes + idx_bytes,
        space=n * c, segments=n * c, dist="sample-channel",
        input_bytes=in_bytes, variant=method, plane_out=oh * ow,
    )
    bwd = LayerCost(
        name=name, type="Pooling", pass_="backward",
        flops=n * c * oh * ow * (window if method == "AVE" else 1),
        bytes=in_bytes + out_bytes + idx_bytes,
        space=n * c, segments=n * c, dist="sample-channel",
        input_bytes=out_bytes, variant=method, plane_out=oh * ow,
    )
    return [fwd, bwd]


def ip_costs(
    name: str, *, outer: int, inner: int, num_output: int, weight_count: int,
) -> List[LayerCost]:
    n = outer
    macs = n * num_output * inner
    in_bytes = n * inner * BYTES
    out_bytes = n * num_output * BYTES
    weight_bytes = weight_count * BYTES
    # Every sample's gemv re-reads the full weight matrix; large weights
    # do not stay cache-resident, so the layer is weight-traffic bound —
    # the mechanism behind the paper's ip1 plateau (Section 4.1.1).
    refetch = min(n, 16)
    fwd = LayerCost(
        name=name, type="InnerProduct", pass_="forward",
        flops=2.0 * macs + out_bytes / BYTES,
        bytes=in_bytes + out_bytes + weight_bytes * refetch,
        space=n, segments=n, dist="sample", input_bytes=in_bytes,
    )
    # backward: dX over samples + dW over output rows (no reduction).
    bwd = LayerCost(
        name=name, type="InnerProduct", pass_="backward",
        flops=4.0 * macs,
        bytes=2 * in_bytes + 2 * out_bytes + weight_bytes * refetch,
        space=n, segments=n + num_output, dist="sample",
        input_bytes=out_bytes,
    )
    return [fwd, bwd]


def lrn_costs(name: str, *, n: int, elems: int) -> List[LayerCost]:
    # square, window prefix-sum, scale, power per element.
    fwd = LayerCost(
        name=name, type="LRN", pass_="forward",
        flops=6.0 * elems, bytes=3 * elems * BYTES,
        space=n, segments=n, dist="sample",
        input_bytes=elems * BYTES,
    )
    bwd = LayerCost(
        name=name, type="LRN", pass_="backward",
        flops=8.0 * elems, bytes=5 * elems * BYTES,
        space=n, segments=n, dist="sample",
        input_bytes=elems * BYTES,
    )
    return [fwd, bwd]


def neuron_costs(
    name: str, type_name: str, *, elems: int, batch: int,
) -> List[LayerCost]:
    fwd = LayerCost(
        name=name, type=type_name, pass_="forward",
        flops=float(elems), bytes=2 * elems * BYTES,
        space=elems, segments=max(batch, 1), dist="element",
        input_bytes=elems * BYTES,
    )
    bwd = LayerCost(
        name=name, type=type_name, pass_="backward",
        flops=float(elems), bytes=3 * elems * BYTES,
        space=elems, segments=max(batch, 1), dist="element",
        input_bytes=elems * BYTES,
    )
    return [fwd, bwd]


def loss_costs(
    name: str, type_name: str, *, batch: int, classes: int,
) -> List[LayerCost]:
    elems = batch * classes
    fwd = LayerCost(
        name=name, type=type_name, pass_="forward",
        flops=5.0 * elems, bytes=2 * elems * BYTES,
        space=batch, segments=batch, dist="sample",
        input_bytes=elems * BYTES,
    )
    bwd = LayerCost(
        name=name, type=type_name, pass_="backward",
        flops=2.0 * elems, bytes=2 * elems * BYTES,
        space=batch, segments=batch, dist="sample",
        input_bytes=elems * BYTES,
    )
    return [fwd, bwd]


def data_costs(name: str, *, out_count: int) -> List[LayerCost]:
    out_bytes = out_count * BYTES
    fwd = LayerCost(
        name=name, type="Data", pass_="forward",
        flops=float(out_count), bytes=2 * out_bytes,
        space=1, segments=1, dist="serial", serial=True,
        input_bytes=0.0,
    )
    return [fwd]  # no backward


def fuse_epilogue_costs(
    costs: List[LayerCost],
    *,
    elems: int,
    relu: bool = False,
    middle: Optional[str] = None,
    middle_params: int = 0,
    stash: bool = False,
) -> List[LayerCost]:
    """Fold a fused chain's epilogue into its primary's cost pair.

    The whole point of fusion is that the absorbed Bias/Scale/ReLU no
    longer re-stream the intermediate blob: the epilogue works on the
    output while it is hot.  So the forward pass gains only the
    epilogue *arithmetic* plus genuinely new traffic (the middle's
    coefficients; the pre-scale stash) — **not** the ``2 * elems *
    BYTES`` read/write the standalone layer would have cost.  The
    backward entries account the mask and channel reductions the fused
    ``backward_loops`` actually run.
    """
    fwd = next((c for c in costs if c.pass_ == "forward"), None)
    bwd = next((c for c in costs if c.pass_ == "backward"), None)
    if fwd is not None:
        if middle:
            fwd.flops += float(elems)
        if relu:
            fwd.flops += float(elems)
        fwd.bytes += middle_params * BYTES
        if stash:
            fwd.bytes += elems * BYTES
    if bwd is not None:
        if relu:
            # dy *= (y > 0): read dy + y, write dy.
            bwd.flops += float(elems)
            bwd.bytes += 3 * elems * BYTES
        if middle == "bias":
            # channel sums over dy.
            bwd.flops += float(elems)
            bwd.bytes += elems * BYTES
        elif middle == "scale":
            # dgamma/dbeta sums (2e) + in-place rescale (e); dy is read
            # twice, the stash once, dy written once.
            bwd.flops += 3.0 * elems
            bwd.bytes += 4 * elems * BYTES + 2 * middle_params * BYTES
    return costs


def structural_costs(
    name: str, type_name: str, *, elems: int,
) -> List[LayerCost]:
    """Structural layers (Split/Concat/Flatten/...): pure copies."""
    return [
        LayerCost(
            name=name, type=type_name, pass_="forward",
            flops=0.0, bytes=2 * elems * BYTES,
            space=max(elems, 1), segments=1, dist="element",
            input_bytes=elems * BYTES,
        ),
        LayerCost(
            name=name, type=type_name, pass_="backward",
            flops=float(elems), bytes=2 * elems * BYTES,
            space=max(elems, 1), segments=1, dist="element",
            input_bytes=elems * BYTES,
        ),
    ]


# ---------------------------------------------------------------------------
# front end 1: instantiated nets
# ---------------------------------------------------------------------------
def net_costs(net: Net, include_accuracy: bool = False) -> List[LayerCost]:
    """Extract forward and backward costs for every layer of ``net``.

    The net must have been shaped (run one forward pass first).  Costs
    come back in network order, forward pass first per layer; the
    backward entries appear for layers that participate in it.
    """
    out: List[LayerCost] = []
    for i, layer in enumerate(net.layers):
        bottom, top = net.bottoms[i], net.tops[i]
        if isinstance(layer, (DataLayer, MemoryDataLayer, InputLayer)):
            out.extend(data_costs(
                layer.name, out_count=sum(t.count for t in top),
            ))
        elif isinstance(layer, FusedConvolutionLayer):
            # Must precede the ConvolutionLayer branch (subclass).  The
            # privatized reduction covers only the primary's params; the
            # middle's coefficients reduce over channels, not samples.
            n, c, h, w = bottom[0].shape
            _, k, oh, ow = top[0].shape
            primary = layer._num_primary_blobs
            costs = conv_costs(
                layer.name, n=n, c=c, h=h, w=w, k=k, oh=oh, ow=ow,
                kernel=layer.kernel_h * layer.kernel_w, group=layer.group,
                weight_count=layer.blobs[0].count,
                param_count=sum(b.count for b in layer.blobs[:primary]),
            )
            middle = None
            if isinstance(layer._middle, ScaleLayer):
                middle = "scale"
            elif layer._middle is not None:
                middle = "bias"
            out.extend(fuse_epilogue_costs(
                costs, elems=top[0].count, relu=layer._fused_relu,
                middle=middle,
                middle_params=sum(b.count for b in layer.blobs[primary:]),
                stash=layer._prescale is not None,
            ))
        elif isinstance(layer, ConvolutionLayer):
            n, c, h, w = bottom[0].shape
            _, k, oh, ow = top[0].shape
            out.extend(conv_costs(
                layer.name, n=n, c=c, h=h, w=w, k=k, oh=oh, ow=ow,
                kernel=layer.kernel_h * layer.kernel_w, group=layer.group,
                weight_count=layer.blobs[0].count,
                param_count=sum(b.count for b in layer.blobs),
            ))
        elif isinstance(layer, PoolingLayer):
            n, c, h, w = bottom[0].shape
            _, _, oh, ow = top[0].shape
            out.extend(pool_costs(
                layer.name, n=n, c=c, h=h, w=w, oh=oh, ow=ow,
                window=layer.kernel_h * layer.kernel_w, method=layer.method,
            ))
        elif isinstance(layer, FusedInnerProductReLU):
            out.extend(fuse_epilogue_costs(
                ip_costs(
                    layer.name, outer=layer.outer, inner=layer.inner,
                    num_output=layer.num_output,
                    weight_count=layer.blobs[0].count,
                ),
                elems=top[0].count, relu=True,
            ))
        elif isinstance(layer, InnerProductLayer):
            out.extend(ip_costs(
                layer.name, outer=layer.outer, inner=layer.inner,
                num_output=layer.num_output,
                weight_count=layer.blobs[0].count,
            ))
        elif isinstance(layer, LRNLayer):
            out.extend(lrn_costs(
                layer.name, n=bottom[0].shape[0], elems=bottom[0].count,
            ))
        elif isinstance(layer, NeuronLayer):
            batch = bottom[0].shape[0] if bottom[0].num_axes else 1
            out.extend(neuron_costs(
                layer.name, layer.type, elems=bottom[0].count, batch=batch,
            ))
        elif isinstance(layer, (LossLayer, SoftmaxLayer)):
            batch = bottom[0].shape[0]
            out.extend(loss_costs(
                layer.name, layer.type, batch=batch,
                classes=bottom[0].count // batch,
            ))
        elif isinstance(layer, AccuracyLayer):
            if include_accuracy:
                batch = bottom[0].shape[0]
                out.extend(loss_costs(
                    layer.name, layer.type, batch=batch,
                    classes=bottom[0].count // batch,
                ))
        elif isinstance(layer, FusedEltwiseReLU):
            out.extend(fuse_epilogue_costs(
                structural_costs(
                    layer.name, layer.type,
                    elems=sum(b.count for b in bottom),
                ),
                elems=top[0].count, relu=True,
            ))
        elif isinstance(layer, FusedScaleBias):
            primary = layer._num_primary_blobs
            out.extend(fuse_epilogue_costs(
                structural_costs(
                    layer.name, layer.type,
                    elems=sum(b.count for b in bottom),
                ),
                elems=top[0].count, middle="bias",
                middle_params=sum(b.count for b in layer.blobs[primary:]),
            ))
        else:
            out.extend(structural_costs(
                layer.name, layer.type,
                elems=sum(b.count for b in bottom),
            ))
    return out


# ---------------------------------------------------------------------------
# front end 2: specs, via symbolic shape inference
# ---------------------------------------------------------------------------
def spec_costs(
    spec: NetSpec,
    phase: str = "TRAIN",
    batch: Optional[int] = None,
    include_accuracy: bool = False,
) -> List[LayerCost]:
    """Cost the network *symbolically* — same formulas, no instantiation.

    ``batch`` overrides every feeder's batch extent (see
    :func:`repro.framework.symbolic.infer_net`).  Raises
    :class:`~repro.framework.shape_inference.ShapeError` (or ``KeyError``
    for an unregistered layer type) on a spec whose shapes don't check
    out — run the netcheck linter first for a readable report.
    """
    sym = infer_net(spec, phase=phase, batch=batch, strict=True)
    out: List[LayerCost] = []
    for inf in sym.layers:
        layer_spec, bottoms, result = inf.spec, inf.bottoms, inf.result
        type_name = layer_spec.type.lower()
        if type_name in _DATA_TYPES:
            out.extend(data_costs(
                layer_spec.name,
                out_count=sum(t.count for t in result.tops),
            ))
        elif type_name in ("convolution", "fusedconv"):
            n, c, h, w = bottoms[0].shape
            _, k, oh, ow = result.tops[0].shape
            kernel_h, kernel_w = _pair(layer_spec, "kernel")
            n_primary = 1 + (1 if layer_spec.param("bias_term", True) else 0)
            if type_name == "convolution":
                n_primary = len(result.param_shapes)
            primary_count = sum(
                _shape_count(s) for s in result.param_shapes[:n_primary])
            costs = conv_costs(
                layer_spec.name, n=n, c=c, h=h, w=w, k=k, oh=oh, ow=ow,
                kernel=kernel_h * kernel_w,
                group=int(layer_spec.param("group", 1)),
                weight_count=_shape_count(result.param_shapes[0]),
                param_count=primary_count,
            )
            if type_name == "fusedconv":
                raw = layer_spec.param("fused_middle")
                middle = raw["type"].lower() if raw else None
                fuse_epilogue_costs(
                    costs, elems=result.tops[0].count,
                    relu=bool(layer_spec.param("fused_relu", False)),
                    middle=middle,
                    middle_params=result.param_count - primary_count,
                    stash=middle == "scale",
                )
            out.extend(costs)
        elif type_name == "pooling":
            n, c, h, w = bottoms[0].shape
            _, _, oh, ow = result.tops[0].shape
            kernel_h, kernel_w = _pair(layer_spec, "kernel")
            out.extend(pool_costs(
                layer_spec.name, n=n, c=c, h=h, w=w, oh=oh, ow=ow,
                window=kernel_h * kernel_w,
                method=str(layer_spec.param("pool", "MAX")).upper(),
            ))
        elif type_name in ("innerproduct", "fusedinnerproductrelu"):
            num_output, inner = result.param_shapes[0]
            costs = ip_costs(
                layer_spec.name, outer=result.forward_space, inner=inner,
                num_output=num_output,
                weight_count=_shape_count(result.param_shapes[0]),
            )
            if type_name == "fusedinnerproductrelu":
                fuse_epilogue_costs(
                    costs, elems=result.tops[0].count, relu=True)
            out.extend(costs)
        elif type_name == "lrn":
            out.extend(lrn_costs(
                layer_spec.name, n=bottoms[0].shape[0],
                elems=bottoms[0].count,
            ))
        elif type_name in _NEURON_TYPES:
            batch_ = bottoms[0].shape[0] if bottoms[0].num_axes else 1
            out.extend(neuron_costs(
                layer_spec.name, layer_spec.type,
                elems=bottoms[0].count, batch=batch_,
            ))
        elif type_name in _LOSS_TYPES:
            batch_ = bottoms[0].shape[0]
            out.extend(loss_costs(
                layer_spec.name, layer_spec.type, batch=batch_,
                classes=bottoms[0].count // batch_,
            ))
        elif type_name == "accuracy":
            if include_accuracy:
                batch_ = bottoms[0].shape[0]
                out.extend(loss_costs(
                    layer_spec.name, layer_spec.type, batch=batch_,
                    classes=bottoms[0].count // batch_,
                ))
        elif type_name == "fusedeltwiserelu":
            out.extend(fuse_epilogue_costs(
                structural_costs(
                    layer_spec.name, layer_spec.type,
                    elems=sum(b.count for b in bottoms),
                ),
                elems=result.tops[0].count, relu=True,
            ))
        elif type_name == "fusedscalebias":
            n_primary = 1 + (1 if layer_spec.param("bias_term", False) else 0)
            primary_count = sum(
                _shape_count(s) for s in result.param_shapes[:n_primary])
            out.extend(fuse_epilogue_costs(
                structural_costs(
                    layer_spec.name, layer_spec.type,
                    elems=sum(b.count for b in bottoms),
                ),
                elems=result.tops[0].count, middle="bias",
                middle_params=result.param_count - primary_count,
            ))
        else:
            out.extend(structural_costs(
                layer_spec.name, layer_spec.type,
                elems=sum(b.count for b in bottoms),
            ))
    return out


def _shape_count(shape) -> int:
    n = 1
    for dim in shape:
        n *= dim
    return n


def producer_dist(costs: List[LayerCost], index: int) -> Optional[str]:
    """Distribution signature of the layer feeding ``costs[index]``.

    For a forward entry that is the previous layer's forward signature;
    for a backward entry, the *downstream* layer's backward signature
    (gradients flow backwards).  Returns None at the boundary.
    """
    cost = costs[index]
    if cost.pass_ == "forward":
        for j in range(index - 1, -1, -1):
            if costs[j].pass_ == "forward" and costs[j].name != cost.name:
                return costs[j].dist
        return None
    # Backward data flows from the *downstream* layer, which appears later
    # in this (net-ordered) list.
    for j in range(index + 1, len(costs)):
        if costs[j].pass_ == "backward" and costs[j].name != cost.name:
            return costs[j].dist
    return None
