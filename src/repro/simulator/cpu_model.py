"""Coarse-grain CPU time model (the OpenMP bars of the paper's figures).

For each layer pass and thread count ``T`` the model composes:

* **compute** — arithmetic time ``flops / (op_rate x effective_cores)``
  where ``op_rate`` is the BLAS gemm rate scaled by a per-layer-type
  efficiency (scalar pooling compares are far from gemm throughput), and
  ``effective_cores`` discounts second-socket cores by the NUMA compute
  penalty (all operands live on node 0 — the paper's "sequential memory
  allocation" limiter); static-schedule imbalance multiplies in as
  ``ceil(space/T) / (space/T)``.
* **memory** — a two-level roofline: per-thread working sets that fit in
  cache stream at per-core cache bandwidth (scales with ``T`` — the
  paper's ReLU reaching 13x), larger sets are bound by node-0 DRAM plus
  QPI for remote threads (the paper's inner-product plateau).
* **dispatch** — per-segment call overhead, divided over threads (the
  granularity limiter for deep small layers).
* **locality** — re-fetch of the input when the producer's data-thread
  distribution differs from this layer's, growing with ``T`` and paid
  over QPI beyond one socket (data->conv1, pool2->ip1, norm1->conv2).
* **reduction** — serialized ordered merge of privatized coefficient
  gradients (backward of layers with a true reduction).
* **fork/join** — fixed parallel-region overhead.

``layer_time(cost, 1)`` is the serial baseline (no parallel overheads).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.simulator.cost_model import LayerCost, producer_dist
from repro.simulator.params import CPUParams, XEON_E5_2667V2


def _dist_mismatch(producer: str, consumer: str) -> bool:
    """Whether the producer's data-thread distribution forces re-fetches.

    Under a static schedule, "sample", "sample-channel" and "element"
    splits all hand a thread (roughly) the same contiguous slice of the
    blob, so they are mutually compatible; only a *serial* producer (the
    data layer) leaves the whole footprint on one core's caches/node —
    the paper's data->conv1 effect.
    """
    return producer == "serial" and consumer != "serial"


class CPUModel:
    """Evaluate coarse-grain layer/network times on the modelled CPU."""

    def __init__(self, params: CPUParams = XEON_E5_2667V2) -> None:
        self.params = params

    # ------------------------------------------------------------------
    # building blocks
    # ------------------------------------------------------------------
    def op_rate(self, layer_type: str) -> float:
        """Usable arithmetic throughput of one core for ``layer_type``."""
        p = self.params
        eff = p.op_efficiency.get(layer_type, p.default_op_efficiency)
        return p.core_flops_per_us * eff

    def effective_cores(self, threads: int) -> float:
        """Compute capacity in node-0-equivalent cores."""
        p = self.params
        local = min(threads, p.cores_per_node)
        remote = max(0, threads - p.cores_per_node)
        return local + remote * (1.0 - p.numa_compute_penalty)

    def dram_bandwidth(self, threads: int) -> float:
        """DRAM bandwidth reachable when all data sits on node 0 (B/us)."""
        p = self.params
        local = min(threads, p.cores_per_node)
        share = 0.0
        for extra in range(local):
            share += 1.0 / (1.0 + p.bw_saturation * extra)
        local_bw = p.node_bw_bytes_per_us * min(
            share * p.single_core_bw_share, 1.0
        )
        remote = max(0, threads - p.cores_per_node)
        remote_bw = p.qpi_bw_bytes_per_us * min(remote / 4.0, 1.0)
        return local_bw + remote_bw

    def memory_time(self, nbytes: float, threads: int) -> float:
        """Two-level memory roofline for ``nbytes`` of traffic."""
        p = self.params
        if nbytes <= 0:
            return 0.0
        per_thread = nbytes / threads
        if per_thread <= p.cache_resident_bytes:
            return nbytes / (p.cache_bw_bytes_per_us * threads)
        return nbytes / self.dram_bandwidth(threads)

    def _imbalance(self, space: int, threads: int) -> float:
        """Static-schedule slowdown factor: busiest thread / ideal."""
        if space <= 0:
            return 1.0
        threads = min(threads, space)
        ideal = space / threads
        busiest = math.ceil(space / threads)
        return busiest / ideal

    # ------------------------------------------------------------------
    # per-layer time
    # ------------------------------------------------------------------
    def layer_time(
        self,
        cost: LayerCost,
        threads: int,
        producer: Optional[str] = None,
    ) -> float:
        """Modelled time (us) of one layer pass at ``threads`` threads."""
        p = self.params
        if threads <= 0:
            raise ValueError(f"threads must be positive, got {threads}")
        serial_compute = cost.flops / self.op_rate(cost.type)
        serial_dispatch = cost.segments * p.dispatch_us
        if cost.serial or threads == 1:
            serial_mem = (
                cost.bytes / p.serial_bw_bytes_per_us if cost.serial
                else self.memory_time(cost.bytes, 1)
            )
            return max(serial_compute, serial_mem) + serial_dispatch

        used = min(threads, max(cost.space, 1))
        imbalance = self._imbalance(cost.space, threads)
        cores = min(self.effective_cores(threads), used)
        compute = serial_compute / cores * imbalance
        mem = self.memory_time(cost.bytes, used)
        dispatch = serial_dispatch / used * imbalance

        locality = 0.0
        if producer is not None and _dist_mismatch(producer, cost.dist):
            miss = p.locality_miss * (1.0 - 1.0 / threads)
            moved = cost.input_bytes * miss
            if threads > p.cores_per_node:
                locality = moved / p.qpi_bw_bytes_per_us
            else:
                locality = moved / self.dram_bandwidth(threads)

        reduction = 0.0
        if cost.reduction_bytes:
            reduction = threads * cost.reduction_bytes / p.merge_bw_bytes_per_us

        fork_join = p.fork_join_us * (1.0 + math.log2(threads))
        return max(compute, mem) + dispatch + locality + reduction + fork_join

    # ------------------------------------------------------------------
    # per-candidate pricing (the plancheck planner's cost oracle)
    # ------------------------------------------------------------------
    def reduction_time(
        self,
        mode: str,
        threads: int,
        nbytes: float,
        block_count: Optional[int] = None,
    ) -> float:
        """Gradient-merge time (us) for one reduction mode.

        * ``ordered`` / ``atomic`` — every thread's private buffer is
          added to the shared blob serially: ``T`` merges (what
          :meth:`layer_time` charges).
        * ``tree`` — pairwise combination by the master: ``T - 1``
          merges total.
        * ``blockwise`` — one private buffer per *block*, merged in
          block order: ``block_count`` merges.  This is the price of
          bitwise thread-count invariance — it does not shrink as
          threads grow, which is exactly why the planner often prefers
          running small reduction layers single-threaded instead.
        """
        if nbytes <= 0 or threads <= 1:
            return 0.0
        p = self.params
        if mode == "tree":
            merges = threads - 1
        elif mode == "blockwise":
            merges = block_count if block_count else threads
        else:  # ordered / atomic
            merges = threads
        return merges * nbytes / p.merge_bw_bytes_per_us

    def plan_layer_time(
        self,
        cost: LayerCost,
        threads: int,
        *,
        team_threads: Optional[int] = None,
        space: Optional[int] = None,
        reduction_mode: Optional[str] = None,
        block_count: Optional[int] = None,
        producer: Optional[str] = None,
        producer_threads: Optional[int] = None,
    ) -> float:
        """Modelled time (us) of one layer pass under a *plan candidate*.

        Generalizes :meth:`layer_time` with the knobs a per-layer plan
        can turn; with none of them turned (same threads as the team,
        ``ordered`` reduction, no space override, producer at the same
        width) it reduces to exactly ``layer_time(cost, threads)`` —
        the cost-parity regression pins that.

        ``threads``
            Threads this layer actually uses.  ``1`` means the layer
            runs inline on the master with **no parallel region**: no
            fork/join, no imbalance, no merge — the serial formula.
        ``space``
            Distributable unit count after granularity folding (a
            coalesce-depth choice shrinks the schedulable space, which
            changes imbalance and the usable thread count).
        ``reduction_mode`` / ``block_count``
            Priced via :meth:`reduction_time`.
        ``producer_threads``
            Thread width of the producing layer.  A width mismatch
            re-fetches the fraction of the input that lands on a
            different thread's slice: ``miss * (1 - min/max)`` of the
            input bytes — an inline (1-thread) producer degenerates to
            the serial-producer penalty of :meth:`layer_time`.
        """
        p = self.params
        if threads <= 0:
            raise ValueError(f"threads must be positive, got {threads}")
        if cost.serial or threads == 1:
            return self.layer_time(cost, 1, producer)

        dist_space = cost.space if space is None else space
        serial_compute = cost.flops / self.op_rate(cost.type)
        serial_dispatch = cost.segments * p.dispatch_us
        used = min(threads, max(dist_space, 1))
        imbalance = self._imbalance(dist_space, threads)
        cores = min(self.effective_cores(threads), used)
        compute = serial_compute / cores * imbalance
        mem = self.memory_time(cost.bytes, used)
        dispatch = serial_dispatch / used * imbalance

        miss_frac = 0.0
        if producer is not None and _dist_mismatch(producer, cost.dist):
            miss_frac = p.locality_miss * (1.0 - 1.0 / threads)
        elif (
            producer_threads is not None
            and producer_threads != threads
            and cost.dist != "serial"
        ):
            narrow, wide = sorted((max(producer_threads, 1), threads))
            miss_frac = p.locality_miss * (1.0 - narrow / wide)
        locality = 0.0
        if miss_frac and cost.input_bytes:
            moved = cost.input_bytes * miss_frac
            if threads > p.cores_per_node:
                locality = moved / p.qpi_bw_bytes_per_us
            else:
                locality = moved / self.dram_bandwidth(threads)

        reduction = 0.0
        if cost.reduction_bytes:
            reduction = self.reduction_time(
                reduction_mode or "ordered", threads,
                cost.reduction_bytes, block_count,
            )

        # Fork/join is a property of the parallel region, which always
        # spans the whole team even when the plan caps this layer's
        # worker count below it.
        region = max(team_threads or threads, threads)
        fork_join = p.fork_join_us * (1.0 + math.log2(region))
        return max(compute, mem) + dispatch + locality + reduction + fork_join

    # ------------------------------------------------------------------
    # whole-network evaluation
    # ------------------------------------------------------------------
    def layer_times(
        self, costs: Sequence[LayerCost], threads: int
    ) -> Dict[str, float]:
        """Time of every layer pass, keyed ``"<layer>.fwd"`` / ``".bwd"``."""
        costs = list(costs)
        out: Dict[str, float] = {}
        for index, cost in enumerate(costs):
            out[cost.key] = self.layer_time(
                cost, threads, producer_dist(costs, index)
            )
        return out

    def iteration_time(self, costs: Sequence[LayerCost], threads: int) -> float:
        """Total time of one training iteration (all passes summed —
        the passes themselves are inherently sequential)."""
        return sum(self.layer_times(costs, threads).values())

    def speedup(self, costs: Sequence[LayerCost], threads: int) -> float:
        return self.iteration_time(costs, 1) / self.iteration_time(costs, threads)

    def layer_speedups(
        self, costs: Sequence[LayerCost], threads: int
    ) -> Dict[str, float]:
        base = self.layer_times(costs, 1)
        now = self.layer_times(costs, threads)
        return {key: base[key] / now[key] for key in base}

    def speedup_curve(
        self, costs: Sequence[LayerCost], thread_counts: Sequence[int]
    ) -> List[float]:
        return [self.speedup(costs, t) for t in thread_counts]
