"""Coarse-grain CPU time model (the OpenMP bars of the paper's figures).

For each layer pass and thread count ``T`` the model composes:

* **compute** — arithmetic time ``flops / (op_rate x effective_cores)``
  where ``op_rate`` is the BLAS gemm rate scaled by a per-layer-type
  efficiency (scalar pooling compares are far from gemm throughput), and
  ``effective_cores`` discounts second-socket cores by the NUMA compute
  penalty (all operands live on node 0 — the paper's "sequential memory
  allocation" limiter); static-schedule imbalance multiplies in as
  ``ceil(space/T) / (space/T)``.
* **memory** — a two-level roofline: per-thread working sets that fit in
  cache stream at per-core cache bandwidth (scales with ``T`` — the
  paper's ReLU reaching 13x), larger sets are bound by node-0 DRAM plus
  QPI for remote threads (the paper's inner-product plateau).
* **dispatch** — per-segment call overhead, divided over threads (the
  granularity limiter for deep small layers).
* **locality** — re-fetch of the input when the producer's data-thread
  distribution differs from this layer's, growing with ``T`` and paid
  over QPI beyond one socket (data->conv1, pool2->ip1, norm1->conv2).
* **reduction** — serialized ordered merge of privatized coefficient
  gradients (backward of layers with a true reduction).
* **fork/join** — fixed parallel-region overhead.

``layer_time(cost, 1)`` is the serial baseline (no parallel overheads).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.simulator.cost_model import LayerCost, producer_dist
from repro.simulator.params import CPUParams, XEON_E5_2667V2


def _dist_mismatch(producer: str, consumer: str) -> bool:
    """Whether the producer's data-thread distribution forces re-fetches.

    Under a static schedule, "sample", "sample-channel" and "element"
    splits all hand a thread (roughly) the same contiguous slice of the
    blob, so they are mutually compatible; only a *serial* producer (the
    data layer) leaves the whole footprint on one core's caches/node —
    the paper's data->conv1 effect.
    """
    return producer == "serial" and consumer != "serial"


class CPUModel:
    """Evaluate coarse-grain layer/network times on the modelled CPU."""

    def __init__(self, params: CPUParams = XEON_E5_2667V2) -> None:
        self.params = params

    # ------------------------------------------------------------------
    # building blocks
    # ------------------------------------------------------------------
    def op_rate(self, layer_type: str) -> float:
        """Usable arithmetic throughput of one core for ``layer_type``."""
        p = self.params
        eff = p.op_efficiency.get(layer_type, p.default_op_efficiency)
        return p.core_flops_per_us * eff

    def effective_cores(self, threads: int) -> float:
        """Compute capacity in node-0-equivalent cores."""
        p = self.params
        local = min(threads, p.cores_per_node)
        remote = max(0, threads - p.cores_per_node)
        return local + remote * (1.0 - p.numa_compute_penalty)

    def dram_bandwidth(self, threads: int) -> float:
        """DRAM bandwidth reachable when all data sits on node 0 (B/us)."""
        p = self.params
        local = min(threads, p.cores_per_node)
        share = 0.0
        for extra in range(local):
            share += 1.0 / (1.0 + p.bw_saturation * extra)
        local_bw = p.node_bw_bytes_per_us * min(
            share * p.single_core_bw_share, 1.0
        )
        remote = max(0, threads - p.cores_per_node)
        remote_bw = p.qpi_bw_bytes_per_us * min(remote / 4.0, 1.0)
        return local_bw + remote_bw

    def memory_time(self, nbytes: float, threads: int) -> float:
        """Two-level memory roofline for ``nbytes`` of traffic."""
        p = self.params
        if nbytes <= 0:
            return 0.0
        per_thread = nbytes / threads
        if per_thread <= p.cache_resident_bytes:
            return nbytes / (p.cache_bw_bytes_per_us * threads)
        return nbytes / self.dram_bandwidth(threads)

    def _imbalance(self, space: int, threads: int) -> float:
        """Static-schedule slowdown factor: busiest thread / ideal."""
        if space <= 0:
            return 1.0
        threads = min(threads, space)
        ideal = space / threads
        busiest = math.ceil(space / threads)
        return busiest / ideal

    # ------------------------------------------------------------------
    # per-layer time
    # ------------------------------------------------------------------
    def layer_time(
        self,
        cost: LayerCost,
        threads: int,
        producer: Optional[str] = None,
    ) -> float:
        """Modelled time (us) of one layer pass at ``threads`` threads."""
        p = self.params
        if threads <= 0:
            raise ValueError(f"threads must be positive, got {threads}")
        serial_compute = cost.flops / self.op_rate(cost.type)
        serial_dispatch = cost.segments * p.dispatch_us
        if cost.serial or threads == 1:
            serial_mem = (
                cost.bytes / p.serial_bw_bytes_per_us if cost.serial
                else self.memory_time(cost.bytes, 1)
            )
            return max(serial_compute, serial_mem) + serial_dispatch

        used = min(threads, max(cost.space, 1))
        imbalance = self._imbalance(cost.space, threads)
        cores = min(self.effective_cores(threads), used)
        compute = serial_compute / cores * imbalance
        mem = self.memory_time(cost.bytes, used)
        dispatch = serial_dispatch / used * imbalance

        locality = 0.0
        if producer is not None and _dist_mismatch(producer, cost.dist):
            miss = p.locality_miss * (1.0 - 1.0 / threads)
            moved = cost.input_bytes * miss
            if threads > p.cores_per_node:
                locality = moved / p.qpi_bw_bytes_per_us
            else:
                locality = moved / self.dram_bandwidth(threads)

        reduction = 0.0
        if cost.reduction_bytes:
            reduction = threads * cost.reduction_bytes / p.merge_bw_bytes_per_us

        fork_join = p.fork_join_us * (1.0 + math.log2(threads))
        return max(compute, mem) + dispatch + locality + reduction + fork_join

    # ------------------------------------------------------------------
    # whole-network evaluation
    # ------------------------------------------------------------------
    def layer_times(
        self, costs: Sequence[LayerCost], threads: int
    ) -> Dict[str, float]:
        """Time of every layer pass, keyed ``"<layer>.fwd"`` / ``".bwd"``."""
        costs = list(costs)
        out: Dict[str, float] = {}
        for index, cost in enumerate(costs):
            out[cost.key] = self.layer_time(
                cost, threads, producer_dist(costs, index)
            )
        return out

    def iteration_time(self, costs: Sequence[LayerCost], threads: int) -> float:
        """Total time of one training iteration (all passes summed —
        the passes themselves are inherently sequential)."""
        return sum(self.layer_times(costs, threads).values())

    def speedup(self, costs: Sequence[LayerCost], threads: int) -> float:
        return self.iteration_time(costs, 1) / self.iteration_time(costs, threads)

    def layer_speedups(
        self, costs: Sequence[LayerCost], threads: int
    ) -> Dict[str, float]:
        base = self.layer_times(costs, 1)
        now = self.layer_times(costs, threads)
        return {key: base[key] / now[key] for key in base}

    def speedup_curve(
        self, costs: Sequence[LayerCost], thread_counts: Sequence[int]
    ) -> List[float]:
        return [self.speedup(costs, t) for t in thread_counts]
