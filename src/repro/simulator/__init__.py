"""Analytic machine models for the paper's performance experiments.

The evaluation container has one CPU core and no GPU, so the paper's
16-core Xeon E5-2667v2 + NVIDIA K40 testbed is *simulated*: per-layer
operation and byte counts are extracted from the real networks (the same
``Net`` objects the functional runtime executes) and fed through roofline
style machine models that reproduce the mechanisms Section 4 identifies —
work granularity, static-schedule imbalance, inter-layer data-thread
locality loss, NUMA crossing beyond 8 threads, the serial data layer, and
ordered-reduction serialization.

Modules:

* :mod:`repro.simulator.params` — machine constants with provenance.
* :mod:`repro.simulator.cost_model` — real-shape layer cost extraction.
* :mod:`repro.simulator.cpu_model` — coarse-grain CPU time model
  (Figures 4, 5, 7, 8 and the OpenMP bars of 6 and 9).
* :mod:`repro.simulator.gpu_model` — fine-grain plain-GPU / cuDNN-GPU
  model (the GPU bars and per-layer GPU speedups of Figures 6 and 9).
* :mod:`repro.simulator.report` — table builders used by the benchmarks.
"""

from repro.simulator.cost_model import LayerCost, net_costs
from repro.simulator.cpu_model import CPUModel
from repro.simulator.gpu_model import GPUModel
from repro.simulator.params import (
    K40_CUDNN,
    K40_PLAIN,
    XEON_E5_2667V2,
    CPUParams,
    GPUParams,
)
from repro.simulator.report import (
    layer_scalability_table,
    layer_time_table,
    overall_speedup_table,
)

__all__ = [
    "CPUModel",
    "CPUParams",
    "GPUModel",
    "GPUParams",
    "K40_CUDNN",
    "K40_PLAIN",
    "LayerCost",
    "XEON_E5_2667V2",
    "layer_scalability_table",
    "layer_time_table",
    "net_costs",
    "overall_speedup_table",
]
