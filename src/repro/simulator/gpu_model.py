"""Fine-grain GPU time model (plain-GPU and cuDNN-GPU bars).

Each layer pass becomes one (or a few) kernels: time is launch overhead
plus a roofline over the device's peak throughputs scaled by the
implementation's per-layer efficiency factors
(:data:`~repro.simulator.params.K40_PLAIN` /
:data:`~repro.simulator.params.K40_CUDNN`).  Data layers stay on the
host (they are CPU-side readers in Caffe), so they retain their serial
CPU time — one of the reasons overall GPU speedups sit far below
per-layer kernel speedups (Amdahl through the input pipeline).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.simulator.cost_model import LayerCost
from repro.simulator.cpu_model import CPUModel
from repro.simulator.params import GPUParams, K40_PLAIN


class GPUModel:
    """Evaluate fine-grain layer/network times on the modelled GPU."""

    def __init__(
        self,
        params: GPUParams = K40_PLAIN,
        host: Optional[CPUModel] = None,
    ) -> None:
        self.params = params
        self.host = host or CPUModel()

    def layer_time(self, cost: LayerCost, threads: int = 1) -> float:
        """Modelled kernel time (us) for one layer pass.

        ``threads`` is accepted for interface symmetry and ignored: the
        fine-grain decomposition saturates the device.
        """
        p = self.params
        if cost.serial:
            # Data layers execute on the host, plus a PCIe-ish transfer
            # absorbed into the bw_efficiency entry.
            host_time = self.host.layer_time(cost, 1)
            bw_eff = p.bw_efficiency.get((cost.type, cost.pass_), p.default_bw_eff)
            return host_time + cost.bytes / (p.bw_bytes_per_us * bw_eff)
        keys = []
        if cost.variant:
            keys.append((f"{cost.type}:{cost.variant}", cost.pass_))
        keys.append((cost.type, cost.pass_))
        eff = next(
            (p.efficiency[k] for k in keys if k in p.efficiency), None
        )
        bw_eff = next(
            (p.bw_efficiency[k] for k in keys if k in p.bw_efficiency), None
        )
        if cost.type == "Convolution" and p.conv_eff_scale:
            # Kernel efficiency grows with available parallelism: small
            # feature maps under-fill the device (the paper's MNIST
            # convolutions barely beat one CPU core on the plain path
            # while the CIFAR ones reach several x).
            eff = min(p.conv_eff_cap, p.conv_eff_scale * cost.flops ** 0.5)
            if cost.pass_ == "backward":
                if p.conv_bwd_channel_law and cost.channels_in:
                    # Plain kernels parallelize backward-filter work over
                    # input channels; shallow inputs starve them (the
                    # paper's 0.43x conv1).
                    eff *= min(1.0, cost.channels_in / 8.0) ** 0.5
                if p.conv_bwd_plane_ref and cost.plane_out:
                    # cuDNN v2 backward kernels tile the feature map;
                    # small maps underfill the tiles (the paper's conv2
                    # backward dropping to 8x).
                    eff *= min(1.0, cost.plane_out / p.conv_bwd_plane_ref) ** 0.75
        if (
            cost.type == "Pooling" and cost.pass_ == "backward"
            and p.pool_plane_ref and bw_eff is not None
        ):
            # Small pooled planes underutilize the per-plane kernels.
            bw_eff *= min(1.0, cost.plane_out / p.pool_plane_ref)
        if eff is None and bw_eff is None:
            eff, bw_eff = p.default_eff, p.default_bw_eff
        compute = (
            cost.flops / (p.peak_flops_per_us * eff) if eff else 0.0
        )
        mem = (
            cost.bytes / (p.bw_bytes_per_us * bw_eff) if bw_eff else 0.0
        )
        kernels = p.kernels_per_layer.get(cost.type, 1)
        return max(compute, mem) + kernels * p.launch_us

    def layer_times(self, costs: Sequence[LayerCost]) -> Dict[str, float]:
        return {cost.key: self.layer_time(cost) for cost in costs}

    def iteration_time(self, costs: Sequence[LayerCost]) -> float:
        return sum(self.layer_times(costs).values())

    def speedup(self, costs: Sequence[LayerCost]) -> float:
        """Whole-iteration speedup over the serial CPU execution."""
        return self.host.iteration_time(costs, 1) / self.iteration_time(costs)

    def layer_speedups(self, costs: Sequence[LayerCost]) -> Dict[str, float]:
        """Per-layer speedups over the serial CPU execution (the paper's
        Figure 6/9 right-hand panels)."""
        base = self.host.layer_times(costs, 1)
        now = self.layer_times(costs)
        return {key: base[key] / now[key] for key in base}
