"""Calibration harness: model outputs vs the paper's reported numbers.

Run ``python tools/calibrate.py`` to print every calibration target next
to the current model value.  Used while tuning
:mod:`repro.simulator.params`; kept in the repo so the provenance of the
constants is reproducible.
"""

import repro.framework.layers  # noqa: F401  (layer registration)
from repro.zoo import build_net
from repro.simulator import (
    CPUModel, GPUModel, K40_CUDNN, K40_PLAIN, net_costs,
)

# (figure, network, metric key, paper value)
TARGETS = [
    # fig5 MNIST per-layer CPU speedups
    ("fig5", "lenet", "cpu8:ip1.fwd", 4.58),
    ("fig5", "lenet", "cpu8:ip1.bwd", 5.93),
    ("fig5", "lenet", "cpu8:pool2.fwd", 5.52),
    ("fig5", "lenet", "cpu8:pool2.bwd", 5.73),
    ("fig5", "lenet", "cpu16:conv1.fwd", 9.5),
    ("fig5", "lenet", "cpu16:conv2.fwd", 10.5),
    # fig6 MNIST overall
    ("fig6", "lenet", "cpu8:overall", 6.0),
    ("fig6", "lenet", "cpu16:overall", 8.0),
    ("fig6", "lenet", "plain:overall", 2.0),
    ("fig6", "lenet", "cudnn:overall", 12.0),
    # fig6 MNIST GPU per-layer
    ("fig6", "lenet", "plain:pool1.fwd", 57.0),
    ("fig6", "lenet", "plain:pool2.fwd", 62.0),
    ("fig6", "lenet", "plain:pool2.bwd", 12.81),
    ("fig6", "lenet", "plain:ip1.bwd", 12.25),
    ("fig6", "lenet", "plain:conv1.fwd", 1.11),
    ("fig6", "lenet", "plain:conv2.fwd", 1.63),
    ("fig6", "lenet", "plain:conv1.bwd", 0.43),
    ("fig6", "lenet", "plain:conv2.bwd", 2.86),
    ("fig6", "lenet", "plain:relu1.fwd", 2.47),
    ("fig6", "lenet", "plain:relu1.bwd", 4.0),
    ("fig6", "lenet", "cudnn:conv1.fwd", 15.0),
    ("fig6", "lenet", "cudnn:conv2.fwd", 25.0),
    ("fig6", "lenet", "cudnn:conv1.bwd", 19.0),
    ("fig6", "lenet", "cudnn:conv2.bwd", 8.0),
    ("fig6", "lenet", "cudnn:pool2.fwd", 27.0),
    ("fig6", "lenet", "cudnn:pool2.bwd", 8.81),
    ("fig6", "lenet", "cudnn:relu1.fwd", 1.74),
    ("fig6", "lenet", "cudnn:relu1.bwd", 2.41),
    # fig8 CIFAR per-layer CPU speedups
    ("fig8", "cifar10", "cpu8:conv1.fwd", 5.87),
    ("fig8", "cifar10", "cpu16:conv1.fwd", 9.0),
    ("fig8", "cifar10", "cpu8:pool1.fwd", 6.5),
    ("fig8", "cifar10", "cpu16:pool1.fwd", 11.0),
    ("fig8", "cifar10", "cpu8:relu1.fwd", 7.0),
    ("fig8", "cifar10", "cpu16:relu1.fwd", 13.0),
    ("fig8", "cifar10", "cpu8:norm1.fwd", 4.6),
    ("fig8", "cifar10", "cpu16:norm1.fwd", 10.8),
    ("fig8", "cifar10", "cpu16:conv2.fwd", 8.25),
    ("fig8", "cifar10", "cpu16:conv1.bwd", 10.0),
    # fig9 CIFAR overall
    ("fig9", "cifar10", "cpu8:overall", 6.0),
    ("fig9", "cifar10", "cpu16:overall", 8.83),
    ("fig9", "cifar10", "plain:overall", 6.0),
    ("fig9", "cifar10", "cudnn:overall", 27.0),
    # fig9 CIFAR GPU per-layer
    ("fig9", "cifar10", "plain:pool1.fwd", 110.0),
    ("fig9", "cifar10", "plain:norm1.fwd", 40.0),
    ("fig9", "cifar10", "plain:conv1.fwd", 4.0),
    ("fig9", "cifar10", "cudnn:conv2.fwd", 50.0),
    ("fig9", "cifar10", "cudnn:pool3.fwd", 11.75),
    ("fig9", "cifar10", "plain:pool3.fwd", 42.0),
    ("fig9", "cifar10", "plain:pool1.fwd2", 8.6),  # pool1 bwd per paper text
    ("fig9", "cifar10", "cudnn:pool1.fwd2", 20.9),
    # serial composition
    ("fig4", "lenet", "share:convpool", 0.80),
    ("fig7", "cifar10", "share:convpoolnorm", 0.85),
]


def evaluate(name: str):
    net = build_net(name)
    net.forward()
    costs = net_costs(net)
    cpu = CPUModel()
    plain = GPUModel(K40_PLAIN, host=cpu)
    cudnn = GPUModel(K40_CUDNN, host=cpu)
    out = {}
    for t in (2, 4, 8, 12, 16):
        out[f"cpu{t}:overall"] = cpu.speedup(costs, t)
        for key, val in cpu.layer_speedups(costs, t).items():
            out[f"cpu{t}:{key}"] = val
    out["plain:overall"] = plain.speedup(costs)
    out["cudnn:overall"] = cudnn.speedup(costs)
    for key, val in plain.layer_speedups(costs).items():
        out[f"plain:{key}"] = val
    for key, val in cudnn.layer_speedups(costs).items():
        out[f"cudnn:{key}"] = val
    # pool1 backward aliases used in TARGETS
    out["plain:pool1.fwd2"] = out.get("plain:pool1.bwd", float("nan"))
    out["cudnn:pool1.fwd2"] = out.get("cudnn:pool1.bwd", float("nan"))
    times = cpu.layer_times(costs, 1)
    total = sum(times.values())
    convpool = sum(v for k, v in times.items()
                   if k.startswith(("conv", "pool")))
    out["share:convpool"] = convpool / total
    out["share:convpoolnorm"] = sum(
        v for k, v in times.items()
        if k.startswith(("conv", "pool", "norm"))
    ) / total
    return out


def main() -> None:
    results = {name: evaluate(name) for name in ("lenet", "cifar10")}
    print(f"{'figure':8}{'net':10}{'metric':24}{'paper':>9}{'model':>9}{'ratio':>8}")
    print("-" * 68)
    for fig, name, metric, paper in TARGETS:
        model = results[name].get(metric, float("nan"))
        ratio = model / paper if paper else float("nan")
        flag = "" if 0.6 <= ratio <= 1.67 else "  <<<"
        print(f"{fig:8}{name:10}{metric:24}{paper:9.2f}{model:9.2f}"
              f"{ratio:8.2f}{flag}")


if __name__ == "__main__":
    main()
