"""Analysis entry point: safety analyzer + net checker + detcheck.

Thin wrapper so every analysis can be run straight from a checkout::

    python tools/analyze.py --net lenet --net cifar10 --gate
    python tools/analyze.py netcheck --prototxt my_net.prototxt --gate
    python tools/analyze.py detcheck --net lenet --threads 1,2,8 --gate
    python tools/analyze.py rescheck --net lenet --threads 1,2,8 --gate
    python tools/analyze.py synccheck --net lenet --threads 1,2,8 --gate
    python tools/analyze.py perfcheck --gate --static-only
    python tools/analyze.py --list-codes

Flag mode runs the parallel-safety analyzer (static write-footprint
classification + shadow-memory race replay).  The ``netcheck``
subcommand runs the net-graph static checker (symbolic shape inference,
DAG lint NG001-NG009, static schedule / memory / FLOP plan).  The
``detcheck`` subcommand runs the determinism certifier: static
nondeterminism lint (DC001-DC007), configuration invariance-tier rules
(DC101-DC104), and bitwise replay certification of convergence
invariance (DC201-DC203).  The ``rescheck`` subcommand runs the
resilience certifier: static state-safety lint (RS001-RS004), bitwise
checkpoint/resume certification (RS101-RS102), and fault-injection
recovery certification (RS201-RS204).  The ``plancheck`` subcommand
runs the auto-parallelization planner (PL001-PL006 lint, PL201/PL202
replay certification).  The ``fusecheck`` subcommand runs the graph
compiler's certifier: fusion + arena transform checks (FU001-FU005)
and fused-vs-unfused bitwise replay certification (FU201/FU202).  The
``synccheck`` subcommand runs the concurrency certifier: lock-order /
barrier-protocol static lint (SY001-SY006), seeded-defect
certification of the interleaving model checker (SY201/SY202), and
CHESS-style bounded model checking of each zoo net's training
iteration (SY101-SY104).  The ``perfcheck`` subcommand runs the
performance certifier: static performance-bug lint against per-layer
PerfDecl allow-lists (PE001-PE005), roofline classification
(PE101/PE102), and cost-model calibration with a per-layer-type
residual gate (PE201-PE203).
``--list-codes`` prints the full FP/RT/NG/DC/RS/PL/FU/SY/PE catalogue;
``--check-codes`` verifies catalogue/source agreement.
Equivalent to ``PYTHONPATH=src python -m repro.analysis``.
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
)

from repro.analysis.__main__ import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
