"""Parallel-safety analyzer entry point.

Thin wrapper so the analyzer can be run straight from a checkout::

    python tools/analyze.py --net lenet --net cifar10 --gate

Equivalent to ``PYTHONPATH=src python -m repro.analysis ...``.
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
)

from repro.analysis.__main__ import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
