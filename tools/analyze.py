"""Analysis entry point: parallel-safety analyzer + net-graph checker.

Thin wrapper so both analyses can be run straight from a checkout::

    python tools/analyze.py --net lenet --net cifar10 --gate
    python tools/analyze.py netcheck --prototxt my_net.prototxt --gate
    python tools/analyze.py netcheck --batch 32 --threads 1,2,8 --json

Flag mode runs the parallel-safety analyzer (static write-footprint
classification + shadow-memory race replay).  The ``netcheck``
subcommand runs the net-graph static checker instead: symbolic shape
inference, DAG lint (NG001-NG009) and the static schedule / memory /
FLOP plan, all from the spec alone.  Equivalent to
``PYTHONPATH=src python -m repro.analysis ...``.
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
)

from repro.analysis.__main__ import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
